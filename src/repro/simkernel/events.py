"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the :class:`~repro.simkernel.core.Environment` resumes a process when the
event it is waiting on is triggered.

An :class:`Event` moves through three states:

``pending``
    created, not yet triggered; callbacks may be attached.
``triggered``
    a value (or exception) has been set and the event is scheduled on the
    environment's queue.
``processed``
    the environment has popped the event and run its callbacks.

Only the small set of event types needed by this project is implemented:
plain events, timeouts, process-completion events, and ``AllOf``/``AnyOf``
condition events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .core import Environment

#: NORMAL scheduling priority (mirrors :data:`repro.simkernel.core.NORMAL`;
#: duplicated here because ``core`` imports this module).
_NORMAL = 1

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Interrupt",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
]


class _PendingType:
    """Sentinel for "event has no value yet"; compares only to itself."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


#: Unique sentinel used as the value of untriggered events.
PENDING = _PendingType()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A single occurrence that processes can wait for.

    Events are triggered with :meth:`succeed` or :meth:`fail`.  Triggering
    schedules the event on the environment queue; when the environment
    processes it, all attached callbacks run (in attach order).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.  Set to
        #: ``None`` after processing, which doubles as the "processed" flag.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        # A failed event whose exception was delivered to at least one
        # process is "defused"; undefused failures crash the simulation.
        self._defused: bool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether a value or exception has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the environment has already run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): triggering is the kernel's hottest
        # entry point, so skip the method call and delay arithmetic.
        env = self.env
        env._push((env._now, _NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event receives the exception via
        ``generator.throw``.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._push((env._now, _NORMAL, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # The schedule/fire cycle of timeouts dominates most simulations,
        # so initialize the Event fields and enqueue directly instead of
        # chaining through Event.__init__ and env.schedule.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._push((env._now + delay, _NORMAL, next(env._eid), self))


class ConditionEvent(Event):
    """Base for events composed of other events (``AllOf`` / ``AnyOf``)."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        """Values of all *processed* sub-events, in construction order.

        Timeouts are "triggered" from construction (their value is known up
        front), so membership must be judged by whether the event has been
        processed — i.e. actually happened — not by ``triggered``.
        """
        return {
            event: event._value
            for event in self.events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _finish(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        else:
            self.succeed(self._collect_values())


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have triggered (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        self._count += 1
        if not event._ok or self._count == len(self.events):
            self._finish(event)


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* sub-event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        self._count += 1
        self._finish(event)
