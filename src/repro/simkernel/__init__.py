"""A compact process-interaction discrete-event simulation kernel.

Provides everything the DoubleDecker reproduction needs: an event queue
with a float clock (:class:`Environment`), generator-based processes,
condition events, FIFO resources, bounded buffers, and deterministic named
random streams.
"""

from .core import EmptySchedule, Environment, StopSimulation
from .events import AllOf, AnyOf, ConditionEvent, Event, Interrupt, Timeout
from .lookahead import LookaheadGroup
from .process import Process
from .resources import Request, Resource, TokenBucket
from .rng import RandomStreams, zipf_ranks
from .timeline import CalendarTimeline

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarTimeline",
    "ConditionEvent",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "LookaheadGroup",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "StopSimulation",
    "Timeout",
    "TokenBucket",
    "zipf_ranks",
]
