"""Shared resources with FIFO queueing.

:class:`Resource` models a server with fixed capacity (e.g., a disk spindle
or an SSD channel).  Processes ``yield resource.request()`` to queue for a
slot and call ``release`` (or use the request as a context manager) when
done.  :class:`TokenBucket` models a bounded buffer measured in abstract
units (e.g., bytes of an async write-back queue).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Resource", "Request", "TokenBucket"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... use the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A server with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set = set()
        self._waiting: Deque[Request] = deque()
        # Cumulative busy time bookkeeping for utilization stats.
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0

    # -- public API -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot claimed by ``request``."""
        if request in self._users:
            self._users.discard(request)
            self._grant_waiters()
            self._update_busy()
        else:
            # Releasing an ungranted request cancels it.
            self._cancel(request)

    def busy_time(self) -> float:
        """Total time at least one slot was busy (for utilization metrics)."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    # -- internals ---------------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant_waiters()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_waiters(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            request = self._waiting.popleft()
            self._users.add(request)
            request.succeed()
        self._update_busy()

    def _update_busy(self) -> None:
        if self._users and self._busy_since is None:
            self._busy_since = self.env.now
        elif not self._users and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None


class TokenBucket:
    """A bounded counter with blocking ``take`` (bounded-buffer semantics).

    ``put(n)`` adds ``n`` units immediately (never blocks; may overfill up
    to ``capacity`` checks done by callers via :attr:`free`).  ``take(n)``
    returns an event that triggers once ``n`` units are available.
    Used for async write-back queues where producers are best-effort.
    """

    def __init__(self, env: "Environment", capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.level = 0.0
        self._takers: Deque[tuple] = deque()

    @property
    def free(self) -> float:
        """Remaining room before the bucket is full."""
        return self.capacity - self.level

    def put(self, amount: float) -> bool:
        """Add ``amount`` units if room allows; returns whether it fit."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        if self.level + amount > self.capacity:
            return False
        self.level += amount
        self._serve_takers()
        return True

    def take(self, amount: float) -> Event:
        """Event that fires once ``amount`` units have been removed."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        event = Event(self.env)
        self._takers.append((amount, event))
        self._serve_takers()
        return event

    def _serve_takers(self) -> None:
        while self._takers and self._takers[0][0] <= self.level:
            amount, event = self._takers.popleft()
            self.level -= amount
            event.succeed()
