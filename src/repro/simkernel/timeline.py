"""Calendar-queue timeline: the kernel's event queue.

A classic binary heap pays ``O(log n)`` *C-level sift* work per push and
pop, but more importantly every pop touches scattered heap slots.  Most
discrete-event simulations schedule overwhelmingly into the *near
future* — for this project the floor is the hypercall round-trip (a few
microseconds) and the ceiling of the hot band is one device service time
(milliseconds).  A calendar queue exploits that: time is divided into
fixed *ticks* and each tick gets a bucket; pops walk the current bucket
left to right by index, which is the cheapest possible dequeue.

Layout
------

* ``_cur`` / ``_pos`` — the bucket currently being drained.  It is kept
  sorted from ``_pos`` onward; popping is ``cur[pos]; pos += 1``.
* ``_buckets`` — dict mapping future tick index -> *unsorted* list of
  entries.  A bucket is sorted once, when it becomes current.
* ``_ticks`` — min-heap of the tick indices present in ``_buckets``
  (one push per bucket *creation*, not per event).
* ``_overflow`` — entry min-heap for events beyond the dense window
  (``horizon`` ticks past the current bucket): far-future items such as
  run-until sentinels, flusher wakeups, or pacing timeouts.  They spill
  back in when the window advances past them (see :meth:`_advance`).

Determinism
-----------

Entries are the same ``(time, priority, eid, event)`` tuples the heap
used, with ``eid`` strictly increasing.  Pop order must be *exactly*
the tuple-lexicographic order heapq produced — fixed-seed fingerprints
depend on it.  Three facts make the calendar equivalent:

1. ``int(t * tick_inv)`` is monotone in ``t``, so every entry of a
   lower-indexed bucket precedes every entry of a higher-indexed one.
2. A becoming-current bucket is sorted wholesale, giving exact tuple
   order (ties broken by ``eid`` = FIFO insertion order) within a tick.
3. The clock never moves backwards, so a push lands either in the
   current bucket — where :func:`bisect.insort` with ``lo=_pos`` places
   it among the not-yet-popped suffix — or in a future bucket.  An
   urgent same-time push therefore still overtakes pending normal
   entries, exactly as it would in the heap.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CalendarTimeline", "DEFAULT_TICK", "DEFAULT_HORIZON"]

#: Bucket width in seconds.  Sized to the cheapest scheduled latency in
#: the stack (the 2 us hypercall floor): anything finer wastes buckets,
#: anything much coarser piles unrelated events into one sort.
DEFAULT_TICK = 1e-4

#: Number of ticks in the dense bucket window (~131 ms at the default
#: tick) — comfortably past one device service time.  Entries beyond it
#: go to the overflow heap.
DEFAULT_HORIZON = 65536

#: A queue entry: ``(time, priority, eid, event)``.
Entry = Tuple[float, int, int, Any]


class CalendarTimeline:
    """Bucketed event timeline with heap-identical pop order."""

    __slots__ = ("_tick_inv", "_horizon", "_buckets", "_ticks", "_overflow",
                 "_cur", "_pos", "_cur_tick", "_limit_tick", "_count")

    def __init__(self, start: float = 0.0, tick: float = DEFAULT_TICK,
                 horizon: int = DEFAULT_HORIZON) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        self._tick_inv = 1.0 / tick
        self._horizon = horizon
        self._buckets: Dict[int, List[Entry]] = {}
        self._ticks: List[int] = []
        self._overflow: List[Entry] = []
        self._cur: List[Entry] = []
        self._pos = 0
        self._cur_tick = int(start * self._tick_inv)
        self._limit_tick = self._cur_tick + horizon
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- enqueue -----------------------------------------------------------

    def push(self, entry: Entry) -> None:
        """Insert ``entry``; its time must not precede the last pop."""
        self._count += 1
        idx = int(entry[0] * self._tick_inv)
        if idx <= self._cur_tick:
            # Same tick as the bucket being drained (the dominant case:
            # zero-delay triggers and hypercall-scale timeouts).
            cur = self._cur
            if self._pos < len(cur) and entry < cur[-1]:
                insort(cur, entry, self._pos)
            else:
                cur.append(entry)
        elif idx < self._limit_tick:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._ticks, idx)
            else:
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)

    # -- dequeue -----------------------------------------------------------

    def pop(self) -> Optional[Entry]:
        """Remove and return the earliest entry, or ``None`` when empty."""
        pos = self._pos
        cur = self._cur
        if pos < len(cur):
            self._pos = pos + 1
            self._count -= 1
            return cur[pos]
        if not self._count:
            return None
        self._advance()
        self._pos = 1
        self._count -= 1
        return self._cur[0]

    def _advance(self) -> None:
        """Make the next non-empty tick current (rollover).

        The next tick may live in the bucket dict, the overflow heap, or
        both (an entry overflows based on the window *at push time*, so a
        later in-window push can target the same tick).  Whichever source
        wins, the merged bucket is sorted into exact tuple order.
        """
        ticks = self._ticks
        overflow = self._overflow
        tick_inv = self._tick_inv
        t_bucket = ticks[0] if ticks else None
        if overflow:
            t_over = int(overflow[0][0] * tick_inv)
            if t_bucket is None or t_over <= t_bucket:
                # Refill: spill every overflow entry of this tick back in.
                entries = []
                while overflow and int(overflow[0][0] * tick_inv) == t_over:
                    entries.append(heappop(overflow))
                if t_over == t_bucket:
                    heappop(ticks)
                    entries.extend(self._buckets.pop(t_bucket))
                entries.sort()
                self._cur = entries
                self._cur_tick = t_over
                self._limit_tick = t_over + self._horizon
                return
        heappop(ticks)
        entries = self._buckets.pop(t_bucket)
        entries.sort()
        self._cur = entries
        self._cur_tick = t_bucket
        self._limit_tick = t_bucket + self._horizon

    # -- inspection --------------------------------------------------------

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if self._pos < len(self._cur):
            return self._cur[self._pos][0]
        best = float("inf")
        if self._ticks:
            best = min(self._buckets[self._ticks[0]])[0]
        if self._overflow and self._overflow[0][0] < best:
            best = self._overflow[0][0]
        return best
