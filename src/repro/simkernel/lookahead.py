"""Conservative-lookahead advancement for sharded simulations.

A sharded simulation gives every shard (e.g. every host of a fleet) its
own :class:`~repro.simkernel.core.Environment`.  Shards may only interact
through a coordinator that acts at *sync boundaries*; between boundaries
each shard's event stream is completely independent.  Under that
contract, advancing every shard to the same boundary — in any order, or
in parallel — is a classic conservative (null-message-free) lookahead
barrier: no shard can receive an event below the boundary it has already
been advanced to, so every interleaving yields byte-identical state.

:class:`LookaheadGroup` is that barrier.  It is deliberately oblivious
to *why* the boundary is safe — the caller (e.g. ``repro.fleet.Fleet``)
derives boundaries from its coupling model, such as an inter-host
network latency floor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .core import Environment

__all__ = ["LookaheadGroup"]


class LookaheadGroup:
    """Advance a set of independent environments to common boundaries.

    ``jobs`` > 1 fans the per-shard advancement out over a thread pool.
    Determinism is preserved because each environment only touches its
    own shard's state; callers must not share mutable simulation state
    across shards (process-global observers like an active tracer are
    shared state — callers are expected to fall back to ``jobs=1`` while
    one is installed).
    """

    def __init__(self, envs: Sequence[Environment], jobs: int = 1) -> None:
        if not envs:
            raise ValueError("need at least one environment")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.envs: List[Environment] = list(envs)
        self.jobs = jobs
        self._pool = None

    def advance(self, until: float, jobs: Optional[int] = None) -> None:
        """Run every shard to ``until`` (one barrier step)."""
        workers = self.jobs if jobs is None else jobs
        if workers > 1 and len(self.envs) > 1:
            pool = self._ensure_pool()
            # list() drains the iterator so worker exceptions surface here.
            list(pool.map(lambda env: env.run(until=until), self.envs))
        else:
            for env in self.envs:
                env.run(until=until)

    def close(self) -> None:
        """Shut the worker pool down (no-op when running serially)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=min(self.jobs, len(self.envs))
            )
        return self._pool
