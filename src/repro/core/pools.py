"""Cache pools: the per-container object namespaces of the hypervisor cache.

Each application container gets a *pool* (created via the ``CREATE_CGROUP``
event).  A pool indexes its cached blocks with the paper's structure — a
per-file hash table of radix trees — and additionally keeps one FIFO per
store backend, which is the eviction order (FIFO is the LRU-equivalent for
an exclusive cache: a hit removes the block, so residence order is
insertion order).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from .config import CachePolicy, StoreKind
from .radix import RadixTree
from .stats import PoolStats

__all__ = ["Pool", "VMEntry", "BlockKey"]

#: A cached object's identity within a pool: (inode number, block offset).
BlockKey = Tuple[int, int]


class Pool:
    """One container's slice of the hypervisor cache."""

    __slots__ = ("pool_id", "vm_id", "name", "policy", "files", "fifos",
                 "used", "entitlement", "stats", "active", "admission")

    def __init__(self, pool_id: int, vm_id: int, name: str, policy: CachePolicy) -> None:
        self.pool_id = pool_id
        self.vm_id = vm_id
        self.name = name
        self.policy = policy
        #: inode -> RadixTree(block offset -> StoreKind)
        self.files: Dict[int, "RadixTree"] = {}
        #: StoreKind -> FIFO of BlockKey (insertion-ordered)
        self.fifos: Dict[StoreKind, "OrderedDict[BlockKey, None]"] = {
            StoreKind.MEMORY: OrderedDict(),
            StoreKind.SSD: OrderedDict(),
        }
        #: StoreKind -> blocks currently cached
        self.used: Dict[StoreKind, int] = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}
        #: StoreKind -> current entitlement in blocks (set by the policy module)
        self.entitlement: Dict[StoreKind, int] = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}
        self.stats = PoolStats(pool_id=pool_id, vm_id=vm_id, name=name)
        #: False once destroyed; guards against use-after-destroy.
        self.active = True
        #: SSD admission controller (repro.endurance); None = admit freely.
        self.admission = None

    # -- lookups ---------------------------------------------------------------

    def lookup(self, inode: int, block: int) -> Optional[StoreKind]:
        """Where (if anywhere) the block is cached."""
        tree = self.files.get(inode)
        if tree is None:
            return None
        return tree.get(block)

    def __len__(self) -> int:
        return self.used[StoreKind.MEMORY] + self.used[StoreKind.SSD]

    # -- mutation -----------------------------------------------------------------

    def insert(self, inode: int, block: int, kind: StoreKind) -> None:
        """Add a block to store ``kind`` (caller enforces capacity)."""
        tree = self.files.get(inode)
        if tree is None:
            tree = RadixTree()
            self.files[inode] = tree
        # One descent: insert reports what it replaced (None if fresh).
        previous = tree.insert(block, kind)
        key = (inode, block)
        if previous is not None:
            # Replacing an existing copy: drop the old placement first.
            del self.fifos[previous][key]
            self.used[previous] -= 1
        self.fifos[kind][key] = None
        self.used[kind] += 1

    def remove(self, inode: int, block: int) -> Optional[StoreKind]:
        """Remove a block; returns the store it was in, or ``None``."""
        return self.remove_key((inode, block))

    def remove_key(self, key: BlockKey) -> Optional[StoreKind]:
        """:meth:`remove` taking the ``(inode, block)`` tuple directly.

        The data path iterates over key tuples; accepting them as-is
        avoids a rebuild of the same tuple for the FIFO deletion.
        """
        inode = key[0]
        tree = self.files.get(inode)
        if tree is None:
            return None
        kind = tree.remove(key[1])
        if kind is None:
            return None
        if not tree._size:
            del self.files[inode]
        del self.fifos[kind][key]
        self.used[kind] -= 1
        return kind

    def remove_inode(self, inode: int) -> Dict[StoreKind, int]:
        """Drop every cached block of ``inode``; returns per-store counts."""
        tree = self.files.pop(inode, None)
        dropped = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}
        if tree is None:
            return dropped
        for block, kind in tree.items():
            del self.fifos[kind][(inode, block)]
            self.used[kind] -= 1
            dropped[kind] += 1
        return dropped

    def pop_oldest(self, kind: StoreKind) -> Optional[BlockKey]:
        """Evict the FIFO head of store ``kind``; returns its key."""
        fifo = self.fifos[kind]
        if not fifo:
            return None
        key, _ = fifo.popitem(last=False)
        inode, block = key
        tree = self.files[inode]
        tree.remove(block)
        if not tree:
            del self.files[inode]
        self.used[kind] -= 1
        return key

    def drain(self) -> Dict[StoreKind, int]:
        """Remove everything (pool destruction); returns per-store counts."""
        counts = {kind: self.used[kind] for kind in self.used}
        self.files.clear()
        for fifo in self.fifos.values():
            fifo.clear()
        for kind in self.used:
            self.used[kind] = 0
        return counts

    def iter_keys(self, kind: Optional[StoreKind] = None) -> Iterator[BlockKey]:
        """All cached keys, oldest-first, optionally limited to one store."""
        kinds = [kind] if kind is not None else list(self.fifos)
        for k in kinds:
            yield from self.fifos[k]

    # -- snapshot ----------------------------------------------------------------

    def snapshot_stats(self) -> PoolStats:
        """A copy of the pool's stats with live usage/entitlement filled in."""
        stats = PoolStats(
            pool_id=self.pool_id,
            vm_id=self.vm_id,
            name=self.name,
            mem_used_blocks=self.used[StoreKind.MEMORY],
            ssd_used_blocks=self.used[StoreKind.SSD],
            mem_entitlement_blocks=self.entitlement[StoreKind.MEMORY],
            ssd_entitlement_blocks=self.entitlement[StoreKind.SSD],
            gets=self.stats.gets,
            get_hits=self.stats.get_hits,
            puts=self.stats.puts,
            puts_stored=self.stats.puts_stored,
            flushes=self.stats.flushes,
            flush_requests=self.stats.flush_requests,
            evictions=self.stats.evictions,
            migrated_in=self.stats.migrated_in,
            migrated_out=self.stats.migrated_out,
            put_rejected_policy=self.stats.put_rejected_policy,
            put_rejected_capacity=self.stats.put_rejected_capacity,
            put_rejected_admission=self.stats.put_rejected_admission,
            put_rejected_backpressure=self.stats.put_rejected_backpressure,
            trickle_rejected_admission=self.stats.trickle_rejected_admission,
            ssd_writes=self.stats.ssd_writes,
        )
        return stats


class VMEntry:
    """A virtual machine registered with the hypervisor cache."""

    __slots__ = ("vm_id", "name", "weight", "pools")

    def __init__(self, vm_id: int, name: str, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"VM weight must be non-negative, got {weight}")
        self.vm_id = vm_id
        self.name = name
        #: Relative share of every store among VMs (hypervisor-level policy).
        self.weight = weight
        self.pools: Dict[int, Pool] = {}

    def used(self, kind: StoreKind) -> int:
        """Blocks this VM's pools hold in store ``kind``."""
        return sum(pool.used[kind] for pool in self.pools.values())

    def entitlement(self, kind: StoreKind) -> int:
        """Blocks this VM is entitled to in store ``kind``."""
        return sum(pool.entitlement[kind] for pool in self.pools.values())

    def pools_on(self, kind: StoreKind) -> List[Pool]:
        """Pools of this VM configured to use store ``kind``."""
        return [
            pool for pool in self.pools.values() if pool.policy.weight_for(kind) > 0
        ]
