"""Cache pools: the per-container object namespaces of the hypervisor cache.

Each application container gets a *pool* (created via the ``CREATE_CGROUP``
event).  A pool indexes its cached blocks with a per-file hash table of
``{block -> handle}`` dicts; all per-block state — identity, store, FIFO
links — lives in a flat :class:`~repro.core.radix.BlockTable` slab shared
by the whole pool, so the data path never allocates per-block objects.
One intrusive FIFO per store backend is the eviction order (FIFO is the
LRU-equivalent for an exclusive cache: a hit removes the block, so
residence order is insertion order).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .config import CachePolicy, StoreKind
from .radix import BlockTable
from .stats import PoolStats

__all__ = ["Pool", "VMEntry", "BlockKey", "CODE_OF", "KIND_OF"]

#: A cached object's identity within a pool: (inode number, block offset).
BlockKey = Tuple[int, int]

_MEMORY = StoreKind.MEMORY
_SSD = StoreKind.SSD

#: Slab store codes (0 is the slab's free-slot marker).
CODE_OF: Dict[StoreKind, int] = {_MEMORY: 1, _SSD: 2}
#: Inverse mapping, indexable by code.
KIND_OF: Tuple[Optional[StoreKind], ...] = (None, _MEMORY, _SSD)

_CODE_MEMORY = 1
_CODE_SSD = 2


class _FifoView:
    """Read-only view of one store's FIFO, oldest first.

    Iteration and length walk the slab's intrusive list, so the view is
    always live.  Only audit/diagnostic paths use it — the data path
    works on the slab directly.
    """

    __slots__ = ("_table", "_code")

    def __init__(self, table: BlockTable, code: int) -> None:
        self._table = table
        self._code = code

    def __iter__(self) -> Iterator[BlockKey]:
        return self._table.fifo_keys(self._code)

    def __len__(self) -> int:
        n = 0
        for _ in self._table.fifo_handles(self._code):
            n += 1
        return n

    def __bool__(self) -> bool:
        return self._table.heads[self._code] >= 0

    def __contains__(self, key: BlockKey) -> bool:
        for candidate in self:
            if candidate == key:
                return True
        return False


class Pool:
    """One container's slice of the hypervisor cache."""

    __slots__ = ("pool_id", "vm_id", "name", "policy", "files", "table",
                 "fifos", "used", "entitlement", "stats", "active",
                 "admission")

    def __init__(self, pool_id: int, vm_id: int, name: str, policy: CachePolicy) -> None:
        self.pool_id = pool_id
        self.vm_id = vm_id
        self.name = name
        self.policy = policy
        #: inode -> {block offset -> slab handle}
        self.files: Dict[int, Dict[int, int]] = {}
        #: Flat per-block state (identity, store code, FIFO links).
        self.table = BlockTable()
        #: StoreKind -> live FIFO view (insertion-ordered keys).
        self.fifos: Dict[StoreKind, _FifoView] = {
            _MEMORY: _FifoView(self.table, _CODE_MEMORY),
            _SSD: _FifoView(self.table, _CODE_SSD),
        }
        #: StoreKind -> blocks currently cached
        self.used: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        #: StoreKind -> current entitlement in blocks (set by the policy module)
        self.entitlement: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        self.stats = PoolStats(pool_id=pool_id, vm_id=vm_id, name=name)
        #: False once destroyed; guards against use-after-destroy.
        self.active = True
        #: SSD admission controller (repro.endurance); None = admit freely.
        self.admission = None

    # -- lookups ---------------------------------------------------------------

    def lookup(self, inode: int, block: int) -> Optional[StoreKind]:
        """Where (if anywhere) the block is cached."""
        tree = self.files.get(inode)
        if tree is None:
            return None
        handle = tree.get(block)
        if handle is None:
            return None
        return KIND_OF[self.table.kind[handle]]

    def __len__(self) -> int:
        return self.used[_MEMORY] + self.used[_SSD]

    # -- mutation -----------------------------------------------------------------

    def insert(self, inode: int, block: int, kind: StoreKind) -> None:
        """Add a block to store ``kind`` (caller enforces capacity).

        Replacing an existing copy re-queues it at the tail of ``kind``'s
        FIFO (the block is the youngest resident again), matching the
        drop-then-reinsert the paper's put path performs.
        """
        files = self.files
        tree = files.get(inode)
        if tree is None:
            tree = {}
            files[inode] = tree
        code = _CODE_MEMORY if kind is _MEMORY else _CODE_SSD
        table = self.table
        handle = tree.get(block)
        if handle is not None:
            previous = table.requeue(handle, code)
            if previous != code:
                self.used[KIND_OF[previous]] -= 1
                self.used[kind] += 1
            return
        # Inlined BlockTable.alloc: claim a slot and link at code's FIFO
        # tail (the insert path runs once per admitted block).
        next_arr = table.next
        prev_arr = table.prev
        handle = table.free_head
        if handle < 0:
            kind_arr = table.kind
            handle = len(kind_arr)
            table.inode.append(inode)
            table.block.append(block)
            kind_arr.append(code)
            prev_arr.append(-1)
            next_arr.append(-1)
        else:
            table.free_head = next_arr[handle]
            table.inode[handle] = inode
            table.block[handle] = block
            table.kind[handle] = code
            next_arr[handle] = -1
        tails = table.tails
        tail = tails[code]
        prev_arr[handle] = tail
        if tail < 0:
            table.heads[code] = handle
        else:
            next_arr[tail] = handle
        tails[code] = handle
        tree[block] = handle
        self.used[kind] += 1

    def remove(self, inode: int, block: int) -> Optional[StoreKind]:
        """Remove a block; returns the store it was in, or ``None``."""
        return self.remove_key((inode, block))

    def remove_key(self, key: BlockKey) -> Optional[StoreKind]:
        """:meth:`remove` taking the ``(inode, block)`` tuple directly.

        The data path iterates over key tuples; accepting them as-is
        avoids a rebuild of the same tuple for the index deletion.
        """
        inode = key[0]
        tree = self.files.get(inode)
        if tree is None:
            return None
        handle = tree.pop(key[1], None)
        if handle is None:
            return None
        if not tree:
            del self.files[inode]
        # Inlined BlockTable.release: unlink from the FIFO, thread the
        # slot onto the free-list (the get-hit path runs this per block).
        table = self.table
        kind_arr = table.kind
        prev_arr = table.prev
        next_arr = table.next
        code = kind_arr[handle]
        p = prev_arr[handle]
        n = next_arr[handle]
        if p < 0:
            table.heads[code] = n
        else:
            next_arr[p] = n
        if n < 0:
            table.tails[code] = p
        else:
            prev_arr[n] = p
        kind_arr[handle] = 0
        next_arr[handle] = table.free_head
        table.free_head = handle
        kind = KIND_OF[code]
        self.used[kind] -= 1
        return kind

    def remove_many(self, keys) -> Tuple[List[BlockKey], List[BlockKey]]:
        """Batch removal sweep: drop every present key in one pass.

        Returns ``(memory_hits, ssd_hits)`` in request order.  The slab
        arrays are bound to locals and the unlink/free writes are inlined,
        so a guest batch costs two dict operations plus a handful of
        array stores per present key — no per-key method dispatch.
        """
        files = self.files
        table = self.table
        kind_arr = table.kind
        prev_arr = table.prev
        next_arr = table.next
        heads = table.heads
        tails = table.tails
        free_head = table.free_head
        mem_hits: List[BlockKey] = []
        ssd_hits: List[BlockKey] = []
        mem_append = mem_hits.append
        ssd_append = ssd_hits.append
        for key in keys:
            tree = files.get(key[0])
            if tree is None:
                continue
            handle = tree.pop(key[1], None)
            if handle is None:
                continue
            if not tree:
                del files[key[0]]
            code = kind_arr[handle]
            p = prev_arr[handle]
            n = next_arr[handle]
            if p < 0:
                heads[code] = n
            else:
                next_arr[p] = n
            if n < 0:
                tails[code] = p
            else:
                prev_arr[n] = p
            kind_arr[handle] = 0
            next_arr[handle] = free_head
            free_head = handle
            if code == _CODE_MEMORY:
                mem_append(key)
            else:
                ssd_append(key)
        table.free_head = free_head
        if mem_hits:
            self.used[_MEMORY] -= len(mem_hits)
        if ssd_hits:
            self.used[_SSD] -= len(ssd_hits)
        return mem_hits, ssd_hits

    def remove_inode(self, inode: int) -> Dict[StoreKind, int]:
        """Drop every cached block of ``inode``; returns per-store counts."""
        tree = self.files.pop(inode, None)
        dropped = {_MEMORY: 0, _SSD: 0}
        if tree is None:
            return dropped
        table = self.table
        for handle in tree.values():
            dropped[KIND_OF[table.release(handle)]] += 1
        for kind, count in dropped.items():
            self.used[kind] -= count
        return dropped

    def pop_oldest(self, kind: StoreKind) -> Optional[BlockKey]:
        """Evict the FIFO head of store ``kind``; returns its key."""
        table = self.table
        handle = table.pop_head(_CODE_MEMORY if kind is _MEMORY else _CODE_SSD)
        if handle < 0:
            return None
        inode = table.inode[handle]
        block = table.block[handle]
        tree = self.files[inode]
        del tree[block]
        if not tree:
            del self.files[inode]
        self.used[kind] -= 1
        return (inode, block)

    def drain(self) -> Dict[StoreKind, int]:
        """Remove everything (pool destruction); returns per-store counts."""
        counts = {kind: self.used[kind] for kind in self.used}
        self.files.clear()
        self.table.reset()
        for kind in self.used:
            self.used[kind] = 0
        return counts

    def iter_keys(self, kind: Optional[StoreKind] = None) -> Iterator[BlockKey]:
        """All cached keys, oldest-first, optionally limited to one store."""
        kinds = [kind] if kind is not None else list(self.fifos)
        for k in kinds:
            yield from self.fifos[k]

    # -- per-inode sweeps --------------------------------------------------

    def items_of_inode(self, inode: int) -> List[Tuple[int, StoreKind]]:
        """``(block, kind)`` pairs of one file in ascending block order
        (the order the paper's radix tree reports, which
        ``migrate_objects`` depends on)."""
        tree = self.files.get(inode)
        if tree is None:
            return []
        kind_arr = self.table.kind
        return [
            (block, KIND_OF[kind_arr[handle]])
            for block, handle in sorted(tree.items())
        ]

    def mem_blocks_of_inode(self, inode: int) -> List[int]:
        """Block offsets of one file currently in the memory store."""
        tree = self.files.get(inode)
        if tree is None:
            return []
        kind_arr = self.table.kind
        return [
            block for block, handle in tree.items()
            if kind_arr[handle] == _CODE_MEMORY
        ]

    # -- snapshot ----------------------------------------------------------------

    def snapshot_stats(self) -> PoolStats:
        """A copy of the pool's stats with live usage/entitlement filled in."""
        stats = PoolStats(
            pool_id=self.pool_id,
            vm_id=self.vm_id,
            name=self.name,
            mem_used_blocks=self.used[_MEMORY],
            ssd_used_blocks=self.used[_SSD],
            mem_entitlement_blocks=self.entitlement[_MEMORY],
            ssd_entitlement_blocks=self.entitlement[_SSD],
            gets=self.stats.gets,
            get_hits=self.stats.get_hits,
            puts=self.stats.puts,
            puts_stored=self.stats.puts_stored,
            flushes=self.stats.flushes,
            flush_requests=self.stats.flush_requests,
            evictions=self.stats.evictions,
            migrated_in=self.stats.migrated_in,
            migrated_out=self.stats.migrated_out,
            migrated_rejected=self.stats.migrated_rejected,
            put_rejected_policy=self.stats.put_rejected_policy,
            put_rejected_capacity=self.stats.put_rejected_capacity,
            put_rejected_admission=self.stats.put_rejected_admission,
            put_rejected_backpressure=self.stats.put_rejected_backpressure,
            trickle_rejected_admission=self.stats.trickle_rejected_admission,
            ssd_writes=self.stats.ssd_writes,
        )
        return stats


class VMEntry:
    """A virtual machine registered with the hypervisor cache."""

    __slots__ = ("vm_id", "name", "weight", "pools")

    def __init__(self, vm_id: int, name: str, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"VM weight must be non-negative, got {weight}")
        self.vm_id = vm_id
        self.name = name
        #: Relative share of every store among VMs (hypervisor-level policy).
        self.weight = weight
        self.pools: Dict[int, Pool] = {}

    def used(self, kind: StoreKind) -> int:
        """Blocks this VM's pools hold in store ``kind``."""
        return sum(pool.used[kind] for pool in self.pools.values())

    def entitlement(self, kind: StoreKind) -> int:
        """Blocks this VM is entitled to in store ``kind``."""
        return sum(pool.entitlement[kind] for pool in self.pools.values())

    def pools_on(self, kind: StoreKind) -> List[Pool]:
        """Pools of this VM configured to use store ``kind``."""
        return [
            pool for pool in self.pools.values() if pool.policy.weight_for(kind) > 0
        ]
