"""Baseline hypervisor caches the paper compares against.

* :class:`GlobalCache` — a tmem-like, nesting-*agnostic* cache: per-VM
  limits only, one global FIFO, no container awareness.  This is the
  "Global" mode of the motivation (§2.3) and evaluation (§5) and exhibits
  the non-deterministic sub-VM distribution the paper demonstrates.
  With ``exclusive=False`` it degrades to an inclusive host cache (used by
  the inclusive-vs-exclusive ablation).
* :class:`StaticPartitionCache` — hard per-container partitions with
  self-eviction, approximating centralized SLA-driven partitioning schemes
  (Morai / software-defined caching); the Morai++ comparison searches over
  its partition vectors.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Set, Tuple

from ..simkernel import Environment
from ..storage import MB, MemSpec
from .audit import global_audit_interval, start_periodic_audit
from .config import CachePolicy, StoreKind
from .interface import HypervisorCacheBase
from .pools import BlockKey, Pool, VMEntry
from .stats import PoolStats, StoreStats
from .stores import MemBackend

__all__ = ["GlobalCache", "StaticPartitionCache"]

#: Global FIFO entries carry the owning pool so eviction can find it.
_GlobalKey = Tuple[int, int, int]  # (pool_id, inode, block)


class _PoolTableCache(HypervisorCacheBase):
    """Shared bookkeeping for the memory-backed baseline caches."""

    def __init__(
        self,
        env: Environment,
        capacity_mb: float,
        block_bytes: int,
        mem_spec: Optional[MemSpec] = None,
    ) -> None:
        self.env = env
        self.block_bytes = block_bytes
        self.capacity_blocks = int(capacity_mb * MB) // block_bytes
        self.used_blocks = 0
        self.mem_backend = MemBackend(block_bytes, mem_spec)
        self.vms: Dict[int, VMEntry] = {}
        self._pools: Dict[int, Pool] = {}
        self._next_vm_id = 1
        self._next_pool_id = 1
        self.counters = StoreStats(kind="memory")
        audit_interval = global_audit_interval()
        if audit_interval > 0:
            start_periodic_audit(env, self, audit_interval)

    # -- lifecycle ---------------------------------------------------------

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        self.vms[vm_id] = VMEntry(vm_id, name, weight)
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        vm = self._require_vm(vm_id)
        for pool_id in list(vm.pools):
            self.destroy_pool(vm_id, pool_id)
        del self.vms[vm_id]

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        self._require_vm(vm_id).weight = weight

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        vm = self._require_vm(vm_id)
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        # Baselines are memory-backed and container-agnostic: every pool is
        # treated as <Mem, equal> regardless of the requested policy.
        pool = Pool(pool_id, vm_id, name, CachePolicy.memory(100.0))
        vm.pools[pool_id] = pool
        self._pools[pool_id] = pool
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pool = self._require_pool(vm_id, pool_id)
        for key in list(pool.iter_keys()):
            if self._forget(pool, *key) is not None:
                self._on_drop(pool_id, *key)
        pool.active = False
        del self.vms[vm_id].pools[pool_id]
        del self._pools[pool_id]

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        # Container-level policy is exactly what these baselines lack.
        self._require_pool(vm_id, pool_id)

    def pool_stats(self, vm_id: int, pool_id: int) -> PoolStats:
        return self._require_pool(vm_id, pool_id).snapshot_stats()

    # -- introspection ---------------------------------------------------------

    def store_stats(self) -> Dict[StoreKind, StoreStats]:
        self.counters.capacity_blocks = self.capacity_blocks
        self.counters.used_blocks = self.used_blocks
        return {StoreKind.MEMORY: self.counters}

    def vm_used_blocks(self, vm_id: int, kind: Optional[StoreKind] = None) -> int:
        vm = self._require_vm(vm_id)
        return vm.used(StoreKind.MEMORY)

    def pool_used_mb(self, pool_id: int, kind: Optional[StoreKind] = None) -> float:
        pool = self._pools.get(pool_id)
        if pool is None:
            return 0.0
        return len(pool) * self.block_bytes / MB

    def vm_used_mb(self, vm_id: int, kind: Optional[StoreKind] = None) -> float:
        vm = self.vms.get(vm_id)
        if vm is None:
            return 0.0
        return vm.used(StoreKind.MEMORY) * self.block_bytes / MB

    # -- helpers ------------------------------------------------------------------

    def _require_vm(self, vm_id: int) -> VMEntry:
        vm = self.vms.get(vm_id)
        if vm is None:
            raise KeyError(f"unknown vm_id {vm_id}")
        return vm

    def _require_pool(self, vm_id: int, pool_id: int) -> Pool:
        vm = self._require_vm(vm_id)
        pool = vm.pools.get(pool_id)
        if pool is None:
            raise KeyError(f"unknown pool_id {pool_id} in VM {vm_id}")
        return pool

    def _forget(self, pool: Pool, inode: int, block: int) -> Optional[StoreKind]:
        """Remove a block from the pool and shared accounting (hook point)."""
        kind = pool.remove(inode, block)
        if kind is not None:
            self.used_blocks -= 1
        return kind

    # Data-path methods are provided by subclasses.
    def get_many(self, vm_id, pool_id, keys):  # pragma: no cover - abstract
        raise NotImplementedError

    def put_many(self, vm_id, pool_id, keys):  # pragma: no cover - abstract
        raise NotImplementedError

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self._require_pool(vm_id, pool_id)
        dropped = 0
        for inode, block in keys:
            if self._forget(pool, inode, block) is not None:
                dropped += 1
                self._on_drop(pool.pool_id, inode, block)
        # Same convention as DoubleDecker: ``flushes`` counts drops,
        # ``flush_requests`` counts blocks asked about.
        pool.stats.flush_requests += len(keys)
        pool.stats.flushes += dropped
        return dropped

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        pool = self._require_pool(vm_id, pool_id)
        tree = pool.files.get(inode)
        if tree is None:
            keys = []
        else:
            keys = [(inode, block) for block, _ in tree.items()]
        dropped = 0
        for key in keys:
            if self._forget(pool, *key) is not None:
                dropped += 1
                self._on_drop(pool.pool_id, *key)
        # Requested semantics, same as DoubleDecker's flush_inode.
        pool.stats.flush_requests += dropped if nblocks is None else nblocks
        pool.stats.flushes += dropped
        return dropped

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        # Baselines key by filesystem, not by container; migration is a no-op.
        return 0

    def _on_drop(self, pool_id: int, inode: int, block: int) -> None:
        """Subclass hook: keep any auxiliary eviction structures in sync."""


class GlobalCache(_PoolTableCache):
    """Nesting-agnostic hypervisor cache (tmem-style "Global" mode).

    One FIFO spans all containers of a VM (and, with a single shared
    capacity, all VMs): whoever inserts fastest owns the cache, which is
    exactly the non-determinism the paper's motivation demonstrates.
    """

    def __init__(
        self,
        env: Environment,
        capacity_mb: float,
        block_bytes: int,
        mem_spec: Optional[MemSpec] = None,
        per_vm_cap_mb: Optional[float] = None,
        exclusive: bool = True,
    ) -> None:
        super().__init__(env, capacity_mb, block_bytes, mem_spec)
        self._fifo: "OrderedDict[_GlobalKey, None]" = OrderedDict()
        self.per_vm_cap_blocks = (
            int(per_vm_cap_mb * MB) // block_bytes if per_vm_cap_mb else None
        )
        #: Exclusive mode removes blocks on hit (second-chance semantics);
        #: inclusive mode keeps them (host-page-cache semantics).
        self.exclusive = exclusive

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        pool = self._require_pool(vm_id, pool_id)
        stats = pool.stats
        stats.gets += len(keys)
        found: Set[BlockKey] = set()
        add_found = found.add
        if self.exclusive:
            # Second-chance semantics: a hit removes the block.  Folding
            # the hit test into the removal costs one tree descent.
            remove = pool.remove_key
            fifo_pop = self._fifo.pop
            for key in keys:
                if remove(key) is not None:
                    add_found(key)
                    fifo_pop((pool_id, key[0], key[1]), None)
            self.used_blocks -= len(found)
        else:
            lookup = pool.lookup
            for key in keys:
                if lookup(key[0], key[1]) is not None:
                    add_found(key)
        stats.get_hits += len(found)
        if found:
            yield self.env.timeout(self.mem_backend.read_cost(len(found)))
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        pool = self._require_pool(vm_id, pool_id)
        vm = self.vms[vm_id]
        stats = pool.stats
        stats.puts += len(keys)
        capacity = self.capacity_blocks
        per_vm_cap = self.per_vm_cap_blocks
        lookup = pool.lookup
        insert = pool.insert
        fifo = self._fifo
        counters = self.counters
        MEMORY = StoreKind.MEMORY
        stored = 0
        for key in keys:
            if capacity <= 0:
                counters.rejected_puts += 1
                continue
            while self.used_blocks + 1 > capacity:
                if not self._evict_one():
                    break
            if self.used_blocks + 1 > capacity:
                counters.rejected_puts += 1
                continue
            if (
                per_vm_cap is not None
                and vm.used(MEMORY) + 1 > per_vm_cap
            ):
                # Per-VM limit: evict this VM's own oldest block.
                if not self._evict_one(vm_filter=vm_id):
                    counters.rejected_puts += 1
                    continue
            inode, block = key
            if lookup(inode, block) is None:
                insert(inode, block, MEMORY)
                self.used_blocks += 1
                fifo[(pool_id, inode, block)] = None
                stored += 1
        stats.puts_stored += stored
        if stored:
            yield self.env.timeout(self.mem_backend.write_cost(stored))
        return stored

    def _evict_one(self, vm_filter: Optional[int] = None) -> bool:
        """Drop the globally-oldest block (optionally of one VM)."""
        if vm_filter is None:
            if not self._fifo:
                return False
            (pool_id, inode, block), _ = self._fifo.popitem(last=False)
        else:
            target = None
            for candidate in self._fifo:
                candidate_pool = self._pools.get(candidate[0])
                if candidate_pool is not None and candidate_pool.vm_id == vm_filter:
                    target = candidate
                    break
            if target is None:
                return False
            del self._fifo[target]
            pool_id, inode, block = target
        pool = self._pools.get(pool_id)
        if pool is None:
            return True  # stale entry of a destroyed pool
        if self._forget(pool, inode, block) is not None:
            pool.stats.evictions += 1
            self.counters.evictions += 1
        return True

    def _on_drop(self, pool_id: int, inode: int, block: int) -> None:
        self._fifo.pop((pool_id, inode, block), None)


class StaticPartitionCache(_PoolTableCache):
    """Centralized static partitioning (the Morai++ approximation).

    Every container gets a hard cap; when its partition is full the
    container evicts *its own* oldest block.  There is no redistribution
    of unused capacity and no in-VM policy control — the two flexibilities
    DoubleDecker adds.
    """

    def __init__(
        self,
        env: Environment,
        capacity_mb: float,
        block_bytes: int,
        mem_spec: Optional[MemSpec] = None,
    ) -> None:
        super().__init__(env, capacity_mb, block_bytes, mem_spec)
        self._caps_blocks: Dict[int, int] = {}

    def set_partition(self, pool_id: int, cap_mb: float) -> None:
        """Assign a hard partition size to a pool."""
        if cap_mb < 0:
            raise ValueError(f"cap must be non-negative, got {cap_mb}")
        if pool_id not in self._pools:
            raise KeyError(f"unknown pool_id {pool_id}")
        self._caps_blocks[pool_id] = int(cap_mb * MB) // self.block_bytes

    def partition_of(self, pool_id: int) -> int:
        """The pool's cap in blocks (0 when never assigned)."""
        return self._caps_blocks.get(pool_id, 0)

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        pool = self._require_pool(vm_id, pool_id)
        stats = pool.stats
        stats.gets += len(keys)
        found: Set[BlockKey] = set()
        add_found = found.add
        # Partitions are exclusive: a hit always removes (one descent).
        remove = pool.remove_key
        for key in keys:
            if remove(key) is not None:
                add_found(key)
        self.used_blocks -= len(found)
        stats.get_hits += len(found)
        if found:
            yield self.env.timeout(self.mem_backend.read_cost(len(found)))
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        pool = self._require_pool(vm_id, pool_id)
        cap = self._caps_blocks.get(pool_id, 0)
        stats = pool.stats
        stats.puts += len(keys)
        counters = self.counters
        lookup = pool.lookup
        insert = pool.insert
        pop_oldest = pool.pop_oldest
        pool_used = pool.used
        MEMORY = StoreKind.MEMORY
        stored = 0
        for key in keys:
            if cap <= 0:
                counters.rejected_puts += 1
                continue
            while pool_used[MEMORY] + 1 > cap:
                victim = pop_oldest(MEMORY)
                if victim is None:
                    break
                self.used_blocks -= 1
                stats.evictions += 1
                counters.evictions += 1
            if pool_used[MEMORY] + 1 > cap:
                counters.rejected_puts += 1
                continue
            inode, block = key
            if lookup(inode, block) is None:
                insert(inode, block, MEMORY)
                self.used_blocks += 1
                stored += 1
        stats.puts_stored += stored
        if stored:
            yield self.env.timeout(self.mem_backend.write_cost(stored))
        return stored
