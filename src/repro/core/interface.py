"""The hypervisor-cache interface contract.

Every cache implementation (DoubleDecker and the baselines) implements
:class:`HypervisorCacheBase`.  Guest operating systems reach it through the
hypercall channel (:mod:`repro.cleancache`); the host administrator calls
the management methods directly.

Data-path operations (``get_many`` / ``put_many``) are *generators*: they
may suspend on simulated device IO (SSD reads, write-buffer pressure).
Control-path operations are plain methods — their (small) hypercall cost
is charged by the guest-side channel.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from .config import CachePolicy, StoreKind
from .pools import BlockKey
from .stats import PoolStats, StoreStats

__all__ = ["HypervisorCacheBase", "NullCache"]


class HypervisorCacheBase(abc.ABC):
    """Abstract second-chance cache living in the hypervisor."""

    # -- VM lifecycle (hypervisor-level policy controller) --------------------

    @abc.abstractmethod
    def register_vm(self, name: str, weight: float = 100.0) -> int:
        """Register a VM; returns its ``vm_id``."""

    @abc.abstractmethod
    def unregister_vm(self, vm_id: int) -> None:
        """Drop a VM and all its pools/objects."""

    @abc.abstractmethod
    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        """Change a VM's share weight (dynamic re-provisioning)."""

    # -- pool lifecycle (guest-level policy controller, via hypercalls) -------

    @abc.abstractmethod
    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        """``CREATE_CGROUP``: allocate a pool for a new container."""

    @abc.abstractmethod
    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        """``DESTROY_CGROUP``: free all objects and retire the pool id."""

    @abc.abstractmethod
    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        """``SET_CG_WEIGHT``: change a container's ``<T, W>`` tuple."""

    @abc.abstractmethod
    def pool_stats(self, vm_id: int, pool_id: int) -> PoolStats:
        """``GET_STATS``: allocation/usage statistics for one pool."""

    # -- data path -------------------------------------------------------------

    @abc.abstractmethod
    def get_many(
        self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]
    ):
        """Exclusive lookup of ``keys``; generator returning the found set.

        Found blocks are *removed* from the cache (ownership moves to the
        guest page cache).
        """

    @abc.abstractmethod
    def put_many(
        self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]
    ):
        """Store clean evicted blocks; generator returning #stored.

        Best-effort: blocks may be rejected (store full of higher-priority
        data, write buffer saturated, pool not configured for any store).
        """

    @abc.abstractmethod
    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        """Invalidate specific blocks (guest dirtied them); returns #dropped."""

    @abc.abstractmethod
    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        """Invalidate a whole file (deletion/truncation); returns #dropped.

        ``nblocks`` is the file's block count as the guest knows it;
        implementations count it into ``flush_requests`` so whole-file
        flushes use the same *requested* semantics as :meth:`flush_many`.
        """

    @abc.abstractmethod
    def migrate_objects(
        self, vm_id: int, from_pool: int, to_pool: int, inode: int
    ) -> int:
        """``MIGRATE_OBJECT``: re-home a shared file's cached blocks."""

    # -- introspection -----------------------------------------------------------

    @abc.abstractmethod
    def store_stats(self) -> Dict[StoreKind, StoreStats]:
        """Capacity/usage/eviction counters per store backend."""

    @abc.abstractmethod
    def vm_used_blocks(self, vm_id: int, kind: Optional[StoreKind] = None) -> int:
        """Blocks a VM currently holds (for the hypervisor's own policies)."""


class NullCache(HypervisorCacheBase):
    """A disabled hypervisor cache: every lookup misses, every put drops.

    Lets experiments run the "no second-chance cache" configuration through
    the identical guest code path.
    """

    def __init__(self) -> None:
        self._next_vm = 1
        self._next_pool = 1

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm
        self._next_vm += 1
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        pass

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        pass

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        pool_id = self._next_pool
        self._next_pool += 1
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pass

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        pass

    def pool_stats(self, vm_id: int, pool_id: int) -> PoolStats:
        return PoolStats(pool_id=pool_id, vm_id=vm_id, name="null")

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        return set()
        yield  # pragma: no cover - makes this a generator

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        return 0
        yield  # pragma: no cover - makes this a generator

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        return 0

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        return 0

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        return 0

    def store_stats(self) -> Dict[StoreKind, StoreStats]:
        return {
            StoreKind.MEMORY: StoreStats(kind="memory"),
            StoreKind.SSD: StoreStats(kind="ssd"),
        }

    def vm_used_blocks(self, vm_id: int, kind: Optional[StoreKind] = None) -> int:
        return 0
