"""The DoubleDecker hypervisor cache manager.

This is the paper's contribution: an exclusive second-chance cache with

* per-VM weighted partitioning (hypervisor-level policy),
* per-container ``<T, W>`` partitioning within each VM's share
  (guest-level policy, delivered over the cleancache/hypercall path),
* two storage backends (memory, SSD) with hybrid and trickle-down modes,
* *resource-conservative* enforcement: blocks are evicted only when a
  store is full, using Algorithm 1 at the VM level and again at the
  container level, in small batches (2 MB by default), FIFO within the
  victim pool (the LRU-equivalent for an exclusive cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..endurance import default_admission, make_admission
from ..obs import tracer as _obs
from ..simkernel import Environment
from ..storage import MB, MemSpec, SSD
from .audit import global_audit_interval, start_periodic_audit
from .config import CachePolicy, DDConfig, StoreKind
from .engine import PolicyEngine
from .interface import HypervisorCacheBase
from .optimizations import DedupIndex, content_fingerprint
from .pools import BlockKey, Pool, VMEntry
from .stats import PoolStats, StoreStats
from .stores import MemBackend, SSDBackend, contiguous_runs
from .victim import exceed_value, selection_state

__all__ = ["DoubleDeckerCache"]


class DoubleDeckerCache(HypervisorCacheBase):
    """Container-aware, two-level weighted hypervisor cache."""

    def __init__(
        self,
        env: Environment,
        config: DDConfig,
        block_bytes: int,
        ssd_device: Optional[SSD] = None,
        mem_spec: Optional[MemSpec] = None,
        name: str = "ddecker",
    ) -> None:
        if config.ssd_capacity_mb > 0 and ssd_device is None:
            raise ValueError("SSD capacity configured but no SSD device supplied")
        self.env = env
        self.config = config
        self.block_bytes = block_bytes
        self.name = name

        self.capacities: Dict[StoreKind, int] = {
            StoreKind.MEMORY: int(config.mem_capacity_mb * MB) // block_bytes,
            StoreKind.SSD: int(config.ssd_capacity_mb * MB) // block_bytes,
        }
        self.used: Dict[StoreKind, int] = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}

        # -- remote-memory lending (fleet cooperation) ----------------
        # ``capacities`` is the *effective* size; the audited invariant is
        # capacities[k] == _base_capacity[k] + lend_in[k] - lend_out[k].
        # Grants are re-derived by a fleet coordinator and applied as
        # absolute values via :meth:`set_lending`; a cache outside a
        # fleet never lends and the three always agree trivially.
        self._base_capacity: Dict[StoreKind, int] = dict(self.capacities)
        self.lend_in: Dict[StoreKind, int] = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}
        self.lend_out: Dict[StoreKind, int] = {StoreKind.MEMORY: 0, StoreKind.SSD: 0}

        self.mem_backend = MemBackend(block_bytes, mem_spec)
        self.ssd_backend: Optional[SSDBackend] = None
        if ssd_device is not None:
            self.ssd_backend = SSDBackend(
                env, ssd_device, write_buffer_mb=config.ssd_write_buffer_mb
            )

        # -- memory-store optimizations (compression / dedup) ---------
        # The memory store is accounted in sub-block *units* so compressed
        # blocks charge their real footprint; without compression the
        # granularity is 1 and units coincide with blocks.
        self.compression = config.compression
        self._mem_gran = (
            self.compression.granularity if self.compression else 1
        )
        self._mem_units_capacity = (
            self.capacities[StoreKind.MEMORY] * self._mem_gran
        )
        self._mem_units_used = 0
        self._fingerprint = config.dedup_fingerprint or content_fingerprint
        self.dedup: Optional[DedupIndex] = (
            DedupIndex(self._fingerprint) if config.dedup else None
        )

        # The policy core: registry, entitlements, and Algorithm-1
        # selection live in the extracted engine; this class remains the
        # storage/clock driver.  ``vms`` / ``_pools`` alias the engine's
        # live dicts so the auditor and tests read one source of truth.
        self.engine = PolicyEngine(
            self.capacities,
            victim_policy=config.victim_policy,
            admission_builder=self._build_admission,
            admission_namer=self._admission_name,
        )
        self.vms: Dict[int, VMEntry] = self.engine.vms
        self._pools: Dict[int, Pool] = self.engine.pools  # global pool-id -> Pool
        self._eviction_batch = max(1, int(config.eviction_batch_mb * MB) // block_bytes)

        self.store_counters: Dict[StoreKind, StoreStats] = {
            StoreKind.MEMORY: StoreStats(kind="memory"),
            StoreKind.SSD: StoreStats(kind="ssd"),
        }

        #: ``ssd_writes`` of pools that no longer exist, so the auditor's
        #: pool-vs-backend write reconciliation survives destroy_pool.
        self._ssd_writes_destroyed = 0
        #: Same idea for the pool-vs-store-counter reconciliations: the
        #: destroyed pools' evictions and put-rejection buckets, so the
        #: monotone ``store_counters`` ledger stays exactly accounted
        #: across pool lifetimes (DD014 auditor coverage).
        self._evictions_destroyed = 0
        self._put_rejected_destroyed = 0
        self._put_rejected_admission_destroyed = 0
        self._put_rejected_backpressure_destroyed = 0

        # Decision-provenance label: unique per cache instance so traces
        # from experiments that build several caches (whose pool ids all
        # restart at 1) never mix.  None when built untraced — the
        # auditor's ledger cross-check skips such caches.
        tracer = _obs.ACTIVE
        self._obs_label: Optional[str] = (
            tracer.register_cache(name) if tracer is not None else None
        )

        # Opt-in shadow accounting: per-config interval wins, else the
        # process-wide switch installed by ``--audit`` / the test fixture.
        audit_interval = config.audit_interval or global_audit_interval()
        if audit_interval > 0:
            start_periodic_audit(env, self, audit_interval)

    # ------------------------------------------------------------------
    # VM lifecycle (hypervisor-level policy controller)
    # ------------------------------------------------------------------

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self.engine.register_vm(name, weight)
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.note_vm(self._obs_label, vm_id, name)
            tracer.instant("vm.register", self.env.now, vm=vm_id,
                           cache=self._obs_label, vm_name=name, weight=weight)
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        vm = self._require_vm(vm_id)
        for pool_id in list(vm.pools):
            self.destroy_pool(vm_id, pool_id)
        self.engine.unregister_vm(vm_id)

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        self.engine.set_vm_weight(vm_id, weight)

    def set_capacity(self, kind: StoreKind, capacity_mb: float) -> None:
        """Dynamically resize a store (the paper grows the memory store
        from 2 GB to 4 GB in the dynamic-VM experiment)."""
        if capacity_mb < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_mb}")
        if kind is StoreKind.SSD and self.ssd_backend is None and capacity_mb > 0:
            raise ValueError("cannot size an SSD store without an SSD device")
        self._base_capacity[kind] = int(capacity_mb * MB) // self.block_bytes
        self._apply_capacity(kind)

    def set_lending(self, kind: StoreKind, lend_in: int = 0,
                    lend_out: int = 0) -> None:
        """Apply re-derived lend grants (absolute block counts, idempotent).

        ``lend_out`` exports part of this cache's own store to another
        host; ``lend_in`` admits borrowed remote capacity.  A store never
        does both at once (the fleet coordinator nets grants out), and it
        cannot lend more than it owns.  Shrinking grants evict through the
        normal path so resource conservation holds across a re-derivation.
        """
        if lend_in < 0 or lend_out < 0:
            raise ValueError(
                f"lend grants must be non-negative, got in={lend_in} "
                f"out={lend_out}"
            )
        if lend_in and lend_out:
            raise ValueError("a store cannot lend and borrow simultaneously")
        if lend_out > self._base_capacity[kind]:
            raise ValueError(
                f"cannot lend {lend_out} of {self._base_capacity[kind]} "
                f"owned blocks"
            )
        if (lend_in == self.lend_in[kind]
                and lend_out == self.lend_out[kind]):
            return
        self.lend_in[kind] = lend_in
        self.lend_out[kind] = lend_out
        self._apply_capacity(kind)
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.instant("lend.apply", self.env.now, cache=self._obs_label,
                           kind=kind.name.lower(), lend_in=lend_in,
                           lend_out=lend_out,
                           capacity=self.capacities[kind])

    def _apply_capacity(self, kind: StoreKind) -> None:
        """Recompute the effective store size from base + lend grants."""
        self.capacities[kind] = (
            self._base_capacity[kind]
            + self.lend_in[kind] - self.lend_out[kind]
        )
        if kind is StoreKind.MEMORY:
            self._mem_units_capacity = self.capacities[kind] * self._mem_gran
        self._recompute()
        self._shrink_to_fit(kind)

    # ------------------------------------------------------------------
    # Pool lifecycle (guest-level policy controller)
    # ------------------------------------------------------------------

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        self._require_vm(vm_id)
        if policy.ssd_weight > 0 and self.ssd_backend is None:
            raise ValueError(
                f"pool {name!r} requests SSD but the cache has no SSD store"
            )
        pool = self.engine.create_pool(vm_id, name, policy)
        pool_id = pool.pool_id
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.note_pool(self._obs_label, pool_id, name)
            tracer.instant("pool.create", self.env.now, vm=vm_id, pool=pool_id,
                           cache=self._obs_label, pool_name=name,
                           mem_weight=policy.mem_weight,
                           ssd_weight=policy.ssd_weight)
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pool = self._require_pool(vm_id, pool_id)
        self._drain_pool(pool)
        # Keep the write and rejection reconciliations exact across pool
        # lifetimes.
        self._ssd_writes_destroyed += pool.stats.ssd_writes
        self._evictions_destroyed += pool.stats.evictions
        self._put_rejected_destroyed += (
            pool.stats.put_rejected_policy
            + pool.stats.put_rejected_capacity
            + pool.stats.put_rejected_admission
            + pool.stats.put_rejected_backpressure
        )
        self._put_rejected_admission_destroyed += pool.stats.put_rejected_admission
        self._put_rejected_backpressure_destroyed += (
            pool.stats.put_rejected_backpressure)
        self.engine.destroy_pool(vm_id, pool_id)
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.instant("pool.destroy", self.env.now, vm=vm_id,
                           pool=pool_id, cache=self._obs_label)

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        pool = self._require_pool(vm_id, pool_id)
        if policy.ssd_weight > 0 and self.ssd_backend is None:
            raise ValueError("policy requests SSD but the cache has no SSD store")
        # The engine keeps the live admission controller when the resolved
        # policy name is unchanged (its ghost/bucket state and ledger
        # survive a weight change) and builds a fresh one on a switch.
        new_name = self.engine.set_pool_policy(vm_id, pool_id, policy)
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.instant("policy.set", self.env.now, vm=vm_id, pool=pool_id,
                           cache=self._obs_label,
                           mem_weight=policy.mem_weight,
                           ssd_weight=policy.ssd_weight,
                           admission=new_name)
        # A container switched away from a store keeps already-cached
        # blocks there (they age out FIFO under pressure) unless it no
        # longer uses the cache at all, in which case they are dropped.
        if not policy.uses_cache and len(pool):
            self._drain_pool(pool)

    def _drain_pool(self, pool: Pool) -> None:
        """Release every cached block of ``pool`` from manager accounting."""
        for inode, block in list(pool.fifos[StoreKind.MEMORY]):
            self._mem_release(pool.vm_id, inode, block)
        counts = pool.drain()
        for kind, count in counts.items():
            self.used[kind] -= count

    def pool_stats(self, vm_id: int, pool_id: int) -> PoolStats:
        return self._require_pool(vm_id, pool_id).snapshot_stats()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        """Exclusive lookup; generator returning the set of found keys."""
        pool = self._require_pool(vm_id, pool_id)
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        # Hot path: every guest page-cache miss funnels through here.  The
        # whole batch is applied as one index sweep over the pool's flat
        # block table; only memory hits need per-key work afterwards (the
        # dedup/compression accounting is inherently per block).
        stats = pool.stats
        stats.gets += len(keys)
        mem_keys, ssd_keys = pool.remove_many(keys)
        mem_hits = len(mem_keys)
        if mem_hits:
            self.used[StoreKind.MEMORY] -= mem_hits
            release = self._mem_release
            for inode, block in mem_keys:
                release(vm_id, inode, block)
        if ssd_keys:
            self.used[StoreKind.SSD] -= len(ssd_keys)
        found: Set[BlockKey] = set(mem_keys)
        found.update(ssd_keys)
        stats.get_hits += len(found)
        # Ledger before the trailing yields (mirrors the stats updates, so
        # the auditor reconciles even if the generator never resumes);
        # the span closes after them so its duration is the real latency.
        if tracer is not None and self._obs_label is not None:
            tracer.ledger_update(self._obs_label, pool_id,
                                 gets=len(keys), get_hits=len(found))
        if mem_hits:
            cost = self.mem_backend.read_cost(mem_hits)
            if self.compression is not None:
                cost += self.compression.decompress_cost(mem_hits)
            yield self.env.timeout(cost)
        if ssd_keys:
            assert self.ssd_backend is not None
            yield from self.ssd_backend.read_runs(contiguous_runs(ssd_keys))
        if tracer is not None:
            tracer.span_end("cache.get", t0, self.env.now, vm=vm_id,
                            pool=pool_id, keys=len(keys), hits=len(found),
                            mem_hits=mem_hits, ssd_hits=len(ssd_keys))
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]):
        """Best-effort store of clean evicted blocks; returns #stored."""
        pool = self._require_pool(vm_id, pool_id)
        stats = pool.stats
        stats.puts += len(keys)
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        # The policy cannot change mid-batch (nothing yields inside the
        # loop), so the uses-cache and store-choice branches are decided
        # once; only the hybrid mode re-checks per key (its spill point
        # depends on occupancy, which the loop itself advances).
        policy = pool.policy
        if not policy.uses_cache:
            stats.put_rejected_policy += len(keys)
            self.store_counters[StoreKind.MEMORY].rejected_puts += len(keys)
            if tracer is not None:
                if self._obs_label is not None:
                    tracer.ledger_update(self._obs_label, pool_id,
                                         puts=len(keys),
                                         put_rejected_policy=len(keys))
                    tracer.instant("put.outcome", self.env.now, vm=vm_id,
                                   pool=pool_id, cache=self._obs_label,
                                   puts=len(keys), stored=0,
                                   rejected_policy=len(keys),
                                   rejected_capacity=0, rejected_admission=0,
                                   rejected_backpressure=0, ssd=0)
                tracer.span_end("cache.put", t0, self.env.now, vm=vm_id,
                                pool=pool_id, keys=len(keys), stored=0)
            return 0
        if tracer is not None:
            # Deltas, not absolutes: eviction triggered by this very batch
            # can touch other counters of the same pool mid-loop.
            rej_capacity0 = stats.put_rejected_capacity
            rej_admission0 = stats.put_rejected_admission
            rej_backpressure0 = stats.put_rejected_backpressure
        MEMORY = StoreKind.MEMORY
        SSD = StoreKind.SSD
        if policy.is_hybrid:
            fixed_kind = None
        elif policy.mem_weight > 0:
            fixed_kind = MEMORY
        else:
            fixed_kind = SSD
        stored = 0
        mem_stores = 0
        used = self.used
        pool_used = pool.used
        entitlement = pool.entitlement
        remove = pool.remove_key
        insert = pool.insert
        release = self._mem_release
        charge = self._mem_charge
        make_room = self._make_room
        counters = self.store_counters
        ssd_backend = self.ssd_backend
        # Admission is consulted only for SSD-destined keys; with no
        # controller configured the hook costs one hoisted None-check per
        # batch, keeping the disabled path byte-identical to the
        # pre-endurance data path.  Nothing yields inside the loop, so
        # the clock is constant and hoisted for the time-based policies.
        admission = pool.admission
        now = self.env.now
        for key in keys:
            inode, block = key
            # Duplicate put: drop the stale copy first so accounting
            # (manager used / memory units) stays exact.  ``remove``
            # folds the former lookup+remove pair into one descent.
            existing = remove(key)
            if existing is not None:
                used[existing] -= 1
                if existing is MEMORY:
                    release(vm_id, inode, block)
            kind = fixed_kind
            if kind is None:  # hybrid spills to SSD past the memory share
                kind = MEMORY if pool_used[MEMORY] < entitlement[MEMORY] else SSD
            if kind is SSD and admission is not None and not admission.admit(key, now):
                stats.put_rejected_admission += 1
                counters[SSD].rejected_puts += 1
                counters[SSD].rejected_admission += 1
                continue
            if not make_room(kind, 1):
                stats.put_rejected_capacity += 1
                counters[kind].rejected_puts += 1
                continue
            if kind is SSD:
                assert ssd_backend is not None
                if not ssd_backend.enqueue_write(1):
                    stats.put_rejected_backpressure += 1
                    counters[kind].rejected_puts += 1
                    counters[kind].rejected_backpressure += 1
                    continue
                stats.ssd_writes += 1
            insert(inode, block, kind)
            used[kind] += 1
            if kind is MEMORY:
                charge(vm_id, inode, block)
                mem_stores += 1
            stored += 1
        stats.puts_stored += stored
        if tracer is not None:
            rejected_capacity = stats.put_rejected_capacity - rej_capacity0
            rejected_admission = stats.put_rejected_admission - rej_admission0
            rejected_backpressure = (
                stats.put_rejected_backpressure - rej_backpressure0
            )
            if self._obs_label is not None:
                # Put-path SSD writes are ``stored - mem_stores`` (not a
                # counter delta: trickle-down during this batch's own
                # evictions may bump the same pool's ``ssd_writes`` and
                # ledgers those itself).
                tracer.ledger_update(
                    self._obs_label, pool_id,
                    puts=len(keys), puts_stored=stored,
                    put_rejected_capacity=rejected_capacity,
                    put_rejected_admission=rejected_admission,
                    put_rejected_backpressure=rejected_backpressure,
                    ssd_writes=stored - mem_stores,
                )
                tracer.instant("put.outcome", self.env.now, vm=vm_id,
                               pool=pool_id, cache=self._obs_label,
                               puts=len(keys), stored=stored,
                               rejected_policy=0,
                               rejected_capacity=rejected_capacity,
                               rejected_admission=rejected_admission,
                               rejected_backpressure=rejected_backpressure,
                               ssd=stored - mem_stores)
        if mem_stores:
            cost = self.mem_backend.write_cost(mem_stores)
            if self.compression is not None:
                cost += self.compression.compress_cost(mem_stores)
            yield self.env.timeout(cost)
        if tracer is not None:
            tracer.span_end("cache.put", t0, self.env.now, vm=vm_id,
                            pool=pool_id, keys=len(keys), stored=stored)
        return stored

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self._require_pool(vm_id, pool_id)
        mem_keys, ssd_keys = pool.remove_many(keys)
        if mem_keys:
            self.used[StoreKind.MEMORY] -= len(mem_keys)
            release = self._mem_release
            for inode, block in mem_keys:
                release(vm_id, inode, block)
        if ssd_keys:
            self.used[StoreKind.SSD] -= len(ssd_keys)
        dropped = len(mem_keys) + len(ssd_keys)
        # ``flushes`` counts blocks actually dropped (same as flush_inode);
        # ``flush_requests`` counts blocks the guest asked about, so the
        # miss rate of flushes stays observable without skewing drop stats.
        pool.stats.flush_requests += len(keys)
        pool.stats.flushes += dropped
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.ledger_update(self._obs_label, pool_id,
                                 flush_requests=len(keys), flushes=dropped)
        return dropped

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        pool = self._require_pool(vm_id, pool_id)
        mem_blocks = pool.mem_blocks_of_inode(inode)
        counts = pool.remove_inode(inode)
        for block in mem_blocks:
            self._mem_release(vm_id, inode, block)
        dropped = 0
        for kind, count in counts.items():
            self.used[kind] -= count
            dropped += count
        # ``flush_requests`` uses the same *requested* semantics as
        # flush_many: the guest passes the file's block count via
        # ``nblocks`` so whole-file flushes report asks, not drops.  When
        # the caller doesn't know the file size, the resident count is
        # the only request size observable here.
        requested = dropped if nblocks is None else nblocks
        pool.stats.flush_requests += requested
        pool.stats.flushes += dropped
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            tracer.ledger_update(self._obs_label, pool_id,
                                 flush_requests=requested, flushes=dropped)
        return dropped

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        """Re-home one file's cached blocks between two pools of one VM.

        Only the key mapping changes; block data stays where it is, so the
        operation is metadata-only (as in the paper's MIGRATE_OBJECT).
        Self-migration is a no-op (a remove/insert cycle would reset the
        blocks' FIFO residence order, making them artificially youngest).
        Blocks whose current store the target policy gives zero weight are
        rejected — they stay in the source pool — so migration cannot
        manufacture the stranded-block class ``_evict_round`` guards
        against.  Rejections are counted into the source pool's
        ``migrated_rejected`` (and the obs ledger / ``migrate`` instant),
        so a partial migration is distinguishable from a full one.
        """
        source = self._require_pool(vm_id, from_pool)
        target = self._require_pool(vm_id, to_pool)
        if from_pool == to_pool:
            return 0
        # Ascending block order (as the old radix index reported): the
        # target-FIFO insertion order feeds future evictions, so it is
        # part of the deterministic contract.
        items = source.items_of_inode(inode)
        if not items:
            return 0
        target_policy = target.policy
        moved = 0
        rejected = 0
        for block, kind in items:
            if target_policy.weight_for(kind) <= 0:
                rejected += 1
                continue
            source.remove(inode, block)
            target.insert(inode, block, kind)
            moved += 1
        if moved:
            source.stats.migrated_out += moved
            target.stats.migrated_in += moved
        if rejected:
            source.stats.migrated_rejected += rejected
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            if moved or rejected:
                tracer.ledger_update(self._obs_label, from_pool,
                                     migrated_out=moved,
                                     migrated_rejected=rejected)
                tracer.ledger_update(self._obs_label, to_pool,
                                     migrated_in=moved)
            tracer.instant("migrate", self.env.now, vm=vm_id, pool=from_pool,
                           cache=self._obs_label, from_pool=from_pool,
                           to_pool=to_pool, inode=inode, moved=moved,
                           rejected=rejected)
        return moved

    # ------------------------------------------------------------------
    # Fleet cooperation: cross-host VM migration
    # ------------------------------------------------------------------

    def export_vm_blocks(
        self, vm_id: int
    ) -> List[Tuple[str, CachePolicy, List[Tuple[int, int, StoreKind]]]]:
        """Hand one VM's cached blocks off for cross-host live migration.

        The fleet-level analogue of ``MIGRATE_OBJECT``: returns one
        ``(pool name, policy, [(inode, block, kind), ...])`` entry per
        pool, pools in id order and blocks in ascending ``(inode, block)``
        order, so the receiving cache's FIFO insertion order — and with it
        every future eviction — is deterministic.  Every exported block
        counts as ``migrated_out`` on its source pool (it leaves this
        cache either way); whether the target accepts it is accounted
        there, so across a migration
        ``source.migrated_out == target.migrated_in + target.migrated_rejected``.

        The caller still tears the VM down afterwards (``unregister_vm``
        or ``Host.destroy_vm``); this method only snapshots and accounts.
        """
        vm = self._require_vm(vm_id)
        tracer = _obs.ACTIVE
        exported: List[Tuple[str, CachePolicy, List[Tuple[int, int, StoreKind]]]] = []
        for pool_id in sorted(vm.pools):
            pool = vm.pools[pool_id]
            items: List[Tuple[int, int, StoreKind]] = []
            for inode in sorted(pool.files):
                for block, kind in pool.items_of_inode(inode):
                    items.append((inode, block, kind))
            exported.append((pool.name, pool.policy, items))
            if items:
                pool.stats.migrated_out += len(items)
            if tracer is not None and self._obs_label is not None:
                if items:
                    tracer.ledger_update(self._obs_label, pool_id,
                                         migrated_out=len(items))
                tracer.instant("migrate.cross_host", self.env.now, vm=vm_id,
                               pool=pool_id, cache=self._obs_label,
                               direction="out", moved=len(items),
                               rejected=0)
        return exported

    def adopt_blocks(
        self, vm_id: int, pool_id: int,
        items: Sequence[Tuple[int, int, StoreKind]],
    ) -> Tuple[int, int]:
        """Adopt blocks exported by another host's cache; ``(accepted,
        rejected)``.

        Live migration ships the memory store with the VM: memory blocks
        are accepted while the target policy weights the memory store and
        free capacity remains (adoption never evicts the host's own warm
        blocks to make room for a cold import).  SSD-resident blocks are
        always rejected — the source host's local SSD does not travel,
        and charging them here would falsify the SSD write
        reconciliation.  Rejections land in the target pool's
        ``migrated_rejected``.
        """
        pool = self._require_pool(vm_id, pool_id)
        MEMORY = StoreKind.MEMORY
        mem_ok = pool.policy.weight_for(MEMORY) > 0
        accepted = 0
        rejected = 0
        for inode, block, kind in items:
            if (kind is not MEMORY or not mem_ok
                    or pool.lookup(inode, block) is not None
                    or self._mem_units_used + self._mem_gran
                    > self._mem_units_capacity):
                rejected += 1
                continue
            pool.insert(inode, block, MEMORY)
            self.used[MEMORY] += 1
            self._mem_charge(vm_id, inode, block)
            accepted += 1
        if accepted:
            pool.stats.migrated_in += accepted
        if rejected:
            pool.stats.migrated_rejected += rejected
        tracer = _obs.ACTIVE
        if tracer is not None and self._obs_label is not None:
            if accepted or rejected:
                tracer.ledger_update(self._obs_label, pool_id,
                                     migrated_in=accepted,
                                     migrated_rejected=rejected)
            tracer.instant("migrate.cross_host", self.env.now, vm=vm_id,
                           pool=pool_id, cache=self._obs_label,
                           direction="in", moved=accepted, rejected=rejected)
        return accepted, rejected

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def store_stats(self) -> Dict[StoreKind, StoreStats]:
        for kind, counters in self.store_counters.items():
            counters.capacity_blocks = self.capacities[kind]
            counters.used_blocks = self.used[kind]
        return self.store_counters

    def vm_used_blocks(self, vm_id: int, kind: Optional[StoreKind] = None) -> int:
        vm = self._require_vm(vm_id)
        if kind is not None:
            return vm.used(kind)
        return vm.used(StoreKind.MEMORY) + vm.used(StoreKind.SSD)

    def pool_used_mb(self, pool_id: int, kind: Optional[StoreKind] = None) -> float:
        """Occupancy of a pool in MB (the quantity Figures 8-13 plot)."""
        pool = self._pools.get(pool_id)
        if pool is None:
            return 0.0
        if kind is not None:
            blocks = pool.used[kind]
        else:
            blocks = len(pool)
        return blocks * self.block_bytes / MB

    def vm_used_mb(self, vm_id: int, kind: Optional[StoreKind] = None) -> float:
        """Occupancy of a VM in MB."""
        vm = self.vms.get(vm_id)
        if vm is None:
            return 0.0
        if kind is not None:
            return vm.used(kind) * self.block_bytes / MB
        return (vm.used(StoreKind.MEMORY) + vm.used(StoreKind.SSD)) * self.block_bytes / MB

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _units_for(self, fingerprint: int) -> int:
        if self.compression is None:
            return 1
        return self.compression.charged_units(fingerprint)

    def _mem_charge(self, vm_id: int, inode: int, block: int) -> None:
        """Account a block entering the memory store (units/dedup).

        The content fingerprint is only needed to size compressed blocks,
        and only for blocks that actually consume capacity — so hash after
        the dedup early-return, and not at all without compression.
        """
        dedup = self.dedup
        if dedup is not None and not dedup.insert(vm_id, inode, block):
            return  # duplicate content: no new capacity consumed
        compression = self.compression
        if compression is None:
            self._mem_units_used += 1
        else:
            self._mem_units_used += compression.charged_units(
                self._fingerprint(vm_id, inode, block)
            )

    def _mem_release(self, vm_id: int, inode: int, block: int) -> None:
        """Account a block leaving the memory store."""
        dedup = self.dedup
        if dedup is not None and not dedup.remove(vm_id, inode, block):
            return  # other references keep the content resident
        compression = self.compression
        if compression is None:
            self._mem_units_used -= 1
        else:
            self._mem_units_used -= compression.charged_units(
                self._fingerprint(vm_id, inode, block)
            )

    @property
    def mem_physical_mb(self) -> float:
        """Real memory consumed by the store (after compression/dedup)."""
        blocks = self._mem_units_used / self._mem_gran
        return blocks * self.block_bytes / MB

    @property
    def _vm_entitlements(self) -> Dict[Tuple[int, StoreKind], int]:
        """Per-``(vm_id, store)`` VM-level entitlements (engine-owned)."""
        return self.engine.vm_entitlements

    def _require_vm(self, vm_id: int) -> VMEntry:
        return self.engine.require_vm(vm_id)

    def _require_pool(self, vm_id: int, pool_id: int) -> Pool:
        return self.engine.require_pool(vm_id, pool_id)

    def _recompute(self) -> None:
        self.engine.recompute()

    def _admission_name(self, policy: CachePolicy) -> str:
        """The admission-policy name ``policy`` resolves to (per-pool
        override, then config default, then the process-wide default)."""
        return policy.admission or self.config.admission or default_admission()

    def _build_admission(self, policy: CachePolicy):
        """Resolve and build a pool's SSD admission controller.

        Precedence: per-pool ``CachePolicy.admission``, then
        ``DDConfig.admission``, then the process-wide default (the CLI
        ``--admission`` flag).  Without an SSD store there is nothing to
        protect, so no controller is built and the hook stays a strict
        no-op.
        """
        if self.ssd_backend is None:
            return None
        name = policy.admission or self.config.admission or default_admission()
        return make_admission(
            name,
            block_bytes=self.block_bytes,
            ssd_capacity_blocks=self.capacities[StoreKind.SSD],
            ghost_mb=self.config.admission_ghost_mb,
            write_mb_s=self.config.admission_write_mb_s,
            burst_mb=self.config.admission_burst_mb,
        )

    def _choose_store(self, pool: Pool) -> Optional[StoreKind]:
        """Where a new put for ``pool`` should land (hybrid spills to SSD)."""
        return self.engine.choose_store(pool)

    def _make_room(self, kind: StoreKind, need: int) -> bool:
        """Ensure ``need`` free blocks in store ``kind``; False on failure.

        The memory store is checked in compressed units (worst-case
        charge per incoming block) so compression genuinely increases the
        number of blocks that fit."""
        capacity = self.capacities[kind]
        if capacity <= 0:
            return False
        guard = 0
        if kind is StoreKind.MEMORY:
            need_units = need * self._mem_gran
            while self._mem_units_used + need_units > self._mem_units_capacity:
                if not self._evict_round(kind):
                    return False
                guard += 1
                if guard > capacity:  # pragma: no cover - safety net
                    return False
            return True
        while self.used[kind] + need > capacity:
            if not self._evict_round(kind):
                return False
            guard += 1
            if guard > capacity:  # pragma: no cover - safety net
                return False
        return True

    def _select_victim(self, entities, batch):
        """Apply the configured victim policy (Algorithm 1 by default)."""
        return self.engine.select_victim(entities, batch)

    def _evict_round(self, kind: StoreKind) -> bool:
        """One Algorithm-1 round: pick victim VM, then pool, evict a batch.

        The selection (candidate enumeration by occupancy, Algorithm-1
        scoring, the fallback rules) lives in
        :meth:`PolicyEngine.select_eviction`; this driver evicts the
        batch FIFO from the winning pool and owns all storage accounting
        (manager ``used``, memory units, trickle-down, tracing).
        """
        batch = self._eviction_batch
        selection = self.engine.select_eviction(kind, batch)
        if selection is None:
            return False
        vm_entities = selection.vm_entities
        pool_entities = selection.pool_entities
        vm: VMEntry = selection.victim_vm

        pool: Pool = selection.victim_pool
        evicted = 0
        trickle: List[BlockKey] = []
        while evicted < batch and pool.used[kind] > 0:
            key = pool.pop_oldest(kind)
            if key is None:
                break
            self.used[kind] -= 1
            if kind is StoreKind.MEMORY:
                self._mem_release(pool.vm_id, key[0], key[1])
            evicted += 1
            if (
                kind is StoreKind.MEMORY
                and self.config.trickle_down
                and self.ssd_backend is not None
                and self.capacities[StoreKind.SSD] > 0
            ):
                trickle.append(key)
        if evicted:
            pool.stats.evictions += evicted
            counters = self.store_counters[kind]
            counters.evictions += evicted
            counters.eviction_rounds += 1
            tracer = _obs.ACTIVE
            if tracer is not None and self._obs_label is not None:
                tracer.ledger_update(self._obs_label, pool.pool_id,
                                     evictions=evicted)
                # Re-derive each candidate's Algorithm-1 exceed value from
                # the same (slack, weight) state the selection used, so
                # the trace shows *why* this entity lost.
                vm_b, vm_cw = selection_state(vm_entities, batch)
                pool_b, pool_cw = selection_state(pool_entities, batch)
                tracer.instant(
                    "evict.round", self.env.now, vm=pool.vm_id,
                    pool=pool.pool_id, cache=self._obs_label,
                    store=kind.value, batch=batch, evicted=evicted,
                    trickled=len(trickle),
                    victim_vm=vm.vm_id, victim_pool=pool.pool_id,
                    vm_candidates=[
                        [e.ref.name, exceed_value(e, batch, vm_b, vm_cw)]
                        for e in vm_entities
                    ],
                    pool_candidates=[
                        [e.ref.name, exceed_value(e, batch, pool_b, pool_cw)]
                        for e in pool_entities
                    ],
                )
            if trickle:
                self._trickle_down(pool, trickle)
            return True
        return False

    def _trickle_down(self, pool: Pool, keys: List[BlockKey]) -> None:
        """Third-chance path: re-home memory-evicted blocks on the SSD.

        The admission controller guards this entrance to the flash store
        too — a trickled block is an SSD write like any other — but its
        rejections are tracked separately (``trickle_rejected_admission``)
        because trickles are internal migrations, not guest puts, so they
        must stay out of the put ledger.  An admission rejection skips
        one key; store-full / buffer-full still abort the batch.
        """
        assert self.ssd_backend is not None
        admission = pool.admission
        now = self.env.now
        tracer = _obs.ACTIVE
        if tracer is not None:
            # Counter snapshots are safe here: nested SSD eviction rounds
            # (via ``_make_room``) never touch these two fields.
            rejected0 = pool.stats.trickle_rejected_admission
            writes0 = pool.stats.ssd_writes
        for key in keys:
            if admission is not None and not admission.admit(key, now):
                pool.stats.trickle_rejected_admission += 1
                continue
            if not self._make_room(StoreKind.SSD, 1):
                break
            if not self.ssd_backend.enqueue_write(1):
                break
            inode, block = key
            pool.insert(inode, block, StoreKind.SSD)
            self.used[StoreKind.SSD] += 1
            pool.stats.ssd_writes += 1
        if tracer is not None and self._obs_label is not None:
            written = pool.stats.ssd_writes - writes0
            rejected = pool.stats.trickle_rejected_admission - rejected0
            tracer.ledger_update(self._obs_label, pool.pool_id,
                                 ssd_writes=written,
                                 trickle_rejected_admission=rejected)
            tracer.instant("trickle.down", self.env.now, vm=pool.vm_id,
                           pool=pool.pool_id, cache=self._obs_label,
                           candidates=len(keys), written=written,
                           rejected_admission=rejected)

    def _shrink_to_fit(self, kind: StoreKind) -> None:
        """After a capacity reduction, evict until within the new limit."""
        if kind is StoreKind.MEMORY:
            while self._mem_units_used > self._mem_units_capacity:
                if not self._evict_round(kind):
                    break
            return
        while self.used[kind] > self.capacities[kind]:
            if not self._evict_round(kind):
                break
