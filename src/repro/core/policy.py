"""The policy module: entitlement computation for the two-level hierarchy.

On every configuration change (VM weight, container ``<T, W>``, capacity
resize, pool create/destroy) the entitlements are recomputed:

* per store ``S``: a VM's share is ``capacity(S) * w_vm / Σ w_vm`` over the
  VMs that *actively use* ``S`` (positive weight and at least one pool
  configured on it) — this matches the paper's dynamic-VM experiment,
  where an SSD-only VM does not dilute the memory shares of others;
* within a VM: a pool's entitlement is the VM share split by the pools'
  weights for that store (the paper's percentages, normalized by their sum
  so partial specifications remain well-defined).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .config import StoreKind
from .pools import VMEntry

__all__ = ["recompute_entitlements", "vm_shares"]


def vm_shares(
    vms: Iterable[VMEntry], capacity_blocks: int, kind: StoreKind
) -> Dict[int, int]:
    """Per-VM entitlement (blocks) for store ``kind``."""
    active = [vm for vm in vms if vm.weight > 0 and vm.pools_on(kind)]
    total_weight = sum(vm.weight for vm in active)
    shares: Dict[int, int] = {}
    if total_weight <= 0 or capacity_blocks <= 0:
        return {vm.vm_id: 0 for vm in active}
    for vm in active:
        shares[vm.vm_id] = int(capacity_blocks * vm.weight / total_weight)
    return shares


def recompute_entitlements(
    vms: Dict[int, VMEntry], capacities: Dict[StoreKind, int]
) -> Dict[Tuple[int, StoreKind], int]:
    """Recompute and install entitlements on every pool.

    Returns the per-``(vm_id, store)`` VM-level entitlements, which the
    cache manager keeps for VM-level victim selection.
    """
    vm_level: Dict[Tuple[int, StoreKind], int] = {}
    for kind, capacity in capacities.items():
        shares = vm_shares(vms.values(), capacity, kind)
        for vm in vms.values():
            share = shares.get(vm.vm_id, 0)
            vm_level[(vm.vm_id, kind)] = share
            pools = vm.pools_on(kind)
            pool_weight_total = sum(pool.policy.weight_for(kind) for pool in pools)
            # Zero out pools not configured on this store.
            for pool in vm.pools.values():
                if pool not in pools:
                    pool.entitlement[kind] = 0
            if not pools or pool_weight_total <= 0 or share <= 0:
                for pool in pools:
                    pool.entitlement[kind] = 0
                continue
            for pool in pools:
                fraction = pool.policy.weight_for(kind) / pool_weight_total
                pool.entitlement[kind] = int(share * fraction)
    return vm_level
