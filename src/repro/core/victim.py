"""Victim selection — a faithful implementation of the paper's Algorithm 1.

When a store is full, DoubleDecker selects *one* victim entity (first a VM,
then a container within that VM) and evicts a small batch from it.  The
selection redistributes the under-used entitlements among over-users in
proportion to their weights, then picks the entity with the largest
*exceed* value:

    exceed(E, b, cw) = E.used + EvictionSize
                       - (E.entitlement + b * E.weightage / cw)

where ``b`` is the sum of under-utilized entitlement slack and ``cw`` the
total weight of the over-users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

__all__ = ["EvictionEntity", "get_victim", "exceed_value", "fallback_victim",
           "selection_state"]


@dataclass
class EvictionEntity:
    """Uniform view of a VM or a container for victim selection.

    ``ref`` carries the underlying object (a :class:`~repro.core.pools.VMEntry`
    or :class:`~repro.core.pools.Pool`); the algorithm only reads the three
    scalar fields.
    """

    ref: Any
    entitlement: int
    used: int
    weightage: float


def exceed_value(
    entity: EvictionEntity,
    eviction_size: int,
    underused_buffer: int,
    cumulative_weight: float,
) -> float:
    """The paper's ``exceed(E, b, cw)`` — how far past its *effective*
    entitlement (base entitlement plus redistributed slack) this entity
    would be after the pending store of ``eviction_size`` blocks."""
    if cumulative_weight > 0:
        redistributed = underused_buffer * entity.weightage / cumulative_weight
    else:
        redistributed = 0.0
    return entity.used + eviction_size - (entity.entitlement + redistributed)


def selection_state(
    entities: Sequence[EvictionEntity], eviction_size: int
) -> "tuple[int, float]":
    """The ``(underused_buffer, cumulative_weight)`` pair Algorithm 1
    derives before scoring candidates — the same slack/weight scan
    :func:`get_victim` performs, exposed so decision-provenance tracing
    can recompute each candidate's exceed value without re-running (or
    perturbing) the selection itself."""
    cumulative_weight = 0.0
    underused_buffer = 0
    for entity in entities:
        if entity.entitlement < entity.used + eviction_size:
            cumulative_weight += entity.weightage
        if entity.entitlement - entity.used > 2 * eviction_size:
            underused_buffer += entity.entitlement - entity.used
    return underused_buffer, cumulative_weight


def get_victim(
    entities: Sequence[EvictionEntity], eviction_size: int
) -> Optional[EvictionEntity]:
    """Select the eviction victim among ``entities`` (Algorithm 1).

    Returns ``None`` when no entity is over-used *and* holding anything —
    callers fall back to the largest holder (which can only happen with
    degenerate entitlement configurations).
    """
    if eviction_size <= 0:
        raise ValueError(f"eviction_size must be positive, got {eviction_size}")

    overused: List[EvictionEntity] = []
    cumulative_weight = 0.0
    underused_buffer = 0
    for entity in entities:
        if entity.entitlement < entity.used + eviction_size:
            overused.append(entity)
            cumulative_weight += entity.weightage
        if entity.entitlement - entity.used > 2 * eviction_size:
            underused_buffer += entity.entitlement - entity.used

    # Only entities that actually hold blocks can yield evictions.
    candidates = [entity for entity in overused if entity.used > 0]
    if not candidates:
        return None

    best = candidates[0]
    best_exceed = exceed_value(best, eviction_size, underused_buffer, cumulative_weight)
    for entity in candidates[1:]:
        value = exceed_value(entity, eviction_size, underused_buffer, cumulative_weight)
        if value > best_exceed:
            best = entity
            best_exceed = value
    return best


def fallback_victim(
    entities: Sequence[EvictionEntity],
) -> Optional[EvictionEntity]:
    """Largest holder — used when Algorithm 1 finds no over-user with data."""
    holders = [entity for entity in entities if entity.used > 0]
    if not holders:
        return None
    return max(holders, key=lambda entity: entity.used)
