"""Shadow accounting: cross-layer invariant auditing and reference models.

Multi-level virtualized caches live or die on exact partition accounting.
This module provides the correctness tooling that catches bookkeeping
drift mechanically instead of by luck:

* :func:`check_cache` / :func:`assert_consistent` — recompute ground
  truth from first principles (pool FIFO lengths vs ``pool.used`` vs
  the file index vs the block-slab ``kind`` plane vs ``manager.used``
  vs memory units / dedup refcounts vs backend occupancy vs freshly
  recomputed entitlements) and report every cross-layer inconsistency.  Works on :class:`DoubleDeckerCache`
  and both baselines; side-effect free, so it can run mid-simulation.
* :func:`start_periodic_audit` — a simulation process that re-audits a
  cache every N simulated seconds.  Wired up automatically by
  ``DDConfig.audit_interval`` (per cache) or
  :func:`set_audit_interval` (globally, used by the experiment CLI's
  ``--audit`` flag).
* :class:`ReferenceCache` / :class:`ReferenceGlobalCache` /
  :class:`ReferenceStaticCache` — brute-force dict-based re-implementations
  of the three cache semantics (plain dicts and lists, no radix trees, no
  hoisted hot loops, no timing).  Differential tests drive the production
  cache and its reference with the same op stream and require *identical*
  results, occupancy, FIFO order, and counters.

Auditing is safe at any event boundary: the data-path generators only
yield at points where the accounting they touched is already consistent.

The dedup placement contract: the memory store's dedup index keys
placements by ``(vm_id, inode, block)``, which is unique because each VM
has one filesystem (one inode space).  The auditor asserts this
uniqueness whenever dedup is enabled — violating it (by driving the
manager directly with colliding inodes across pools of one VM) would
silently corrupt unit accounting, and is reported instead.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .config import CachePolicy, DDConfig, StoreKind
from .optimizations import content_fingerprint
from .policy import recompute_entitlements
from .pools import CODE_OF as _CODE_OF
from .pools import KIND_OF as _CODE_KINDS
from .pools import BlockKey
from ..endurance import default_admission
from ..storage import MB

__all__ = [
    "InvariantViolation",
    "check_cache",
    "check_host",
    "assert_consistent",
    "assert_host_clean",
    "set_audit_interval",
    "global_audit_interval",
    "start_periodic_audit",
    "ReferenceCache",
    "ReferenceGlobalCache",
    "ReferenceStaticCache",
]

_MEMORY = StoreKind.MEMORY
_SSD = StoreKind.SSD
_KINDS = (_MEMORY, _SSD)


class InvariantViolation(AssertionError):
    """Raised by :func:`assert_consistent` with the full violation report."""


# ----------------------------------------------------------------------
# Global audit switch (the CLI's --audit flag and the pytest fixture)
# ----------------------------------------------------------------------

_global_interval = 0.0


def set_audit_interval(seconds: float) -> None:
    """Globally opt every *subsequently constructed* cache into periodic
    self-auditing (0 turns the default back off).  Per-cache
    ``DDConfig.audit_interval`` takes precedence when set."""
    global _global_interval
    if seconds < 0:
        raise ValueError(f"audit interval must be non-negative, got {seconds}")
    _global_interval = float(seconds)


def global_audit_interval() -> float:
    """The interval installed by :func:`set_audit_interval` (0 = off)."""
    return _global_interval


def start_periodic_audit(env, cache, interval: float):
    """Run :func:`assert_consistent` on ``cache`` every ``interval``
    simulated seconds; returns the auditing process."""
    if interval <= 0:
        raise ValueError(f"audit interval must be positive, got {interval}")

    def loop():
        while True:
            yield env.timeout(interval)
            assert_consistent(cache, where=f"t={env.now:.1f}s")

    name = getattr(cache, "name", type(cache).__name__)
    return env.process(loop(), name=f"audit:{name}")


# ----------------------------------------------------------------------
# The invariant checker
# ----------------------------------------------------------------------

def check_cache(cache) -> List[str]:
    """Audit ``cache``; returns a list of violation descriptions (empty =
    consistent).  Dispatches on the cache implementation; caches with no
    shared accounting (e.g. ``NullCache``) audit trivially clean."""
    from .baselines import _PoolTableCache
    from .cache_manager import DoubleDeckerCache

    if isinstance(cache, DoubleDeckerCache):
        return _check_doubledecker(cache)
    if isinstance(cache, _PoolTableCache):
        return _check_pool_table(cache)
    return []


def assert_consistent(cache, where: str = "") -> None:
    """Raise :class:`InvariantViolation` listing every violated invariant."""
    violations = check_cache(cache)
    if violations:
        header = f"cache audit failed ({where})" if where else "cache audit failed"
        body = "\n".join(f"  - {violation}" for violation in violations)
        raise InvariantViolation(f"{header}:\n{body}")


def check_host(host) -> List[str]:
    """Host-level residue audit: destroyed VMs must leave zero residue.

    Checks (duck-typed so :mod:`repro.core` needs no hypervisor import):

    * the hypervisor cache knows exactly the host's live VMs — a
      destroyed VM's registration (pools, FIFO slabs, dedup charges)
      must be gone, a live one's must exist;
    * every cached per-VM RNG stream belongs to a live VM — the
      ``vm.<name>.reclaim`` entry is dropped with the VM;
    * virtual-disk address space is conserved: live VMs plus the
      free-list of retired region bases account for every region the
      allocator ever handed out, with no base issued twice.

    Includes a full :func:`check_cache` of the installed cache, so a
    create/destroy churn loop can assert the whole stack in one call.
    """
    violations = check_cache(host.hvcache)
    live_ids = {vm.vm_id for vm in host.vms.values()}
    registered = getattr(host.hvcache, "vms", None)
    if isinstance(registered, dict):
        ghost = sorted(set(registered) - live_ids)
        missing = sorted(live_ids - set(registered))
        if ghost:
            violations.append(
                f"hypervisor cache still registers destroyed vm ids {ghost}"
            )
        if missing:
            violations.append(
                f"live vm ids {missing} missing from the hypervisor cache"
            )
    live_names = set(host.vms)
    for stream_name in host.streams._streams:
        if not stream_name.startswith("vm."):
            continue
        owner = stream_name[3:].rsplit(".", 1)[0]
        if owner not in live_names:
            violations.append(
                f"RNG stream {stream_name!r} survives its destroyed VM"
            )
    live_bases = {vm.disk_base_block for vm in host.vms.values()}
    free_bases = set(host._free_disk_bases)
    if len(host._free_disk_bases) != len(free_bases):
        violations.append("virtual-disk free list holds duplicate bases")
    if live_bases & free_bases:
        violations.append(
            f"virtual-disk bases {sorted(live_bases & free_bases)} are "
            f"both live and on the free list"
        )
    if len(live_bases) + len(free_bases) != host._vm_count:
        violations.append(
            f"virtual-disk regions leak: {host._vm_count} allocated but "
            f"{len(live_bases)} live + {len(free_bases)} free"
        )
    return violations


def assert_host_clean(host, where: str = "") -> None:
    """Raise :class:`InvariantViolation` on any host-level residue."""
    violations = check_host(host)
    if violations:
        header = f"host audit failed ({where})" if where else "host audit failed"
        body = "\n".join(f"  - {violation}" for violation in violations)
        raise InvariantViolation(f"{header}:\n{body}")


def _check_pool_structures(pool, violations: List[str]) -> Dict[BlockKey, StoreKind]:
    """Pool-internal coherence: file index vs block slab vs FIFOs vs
    ``pool.used``.

    The pool's per-file dicts hold integer handles into the flat
    :class:`~repro.core.radix.BlockTable`; every handle must be in range,
    point at a live slot, and agree with the slot's recorded identity.
    FIFO walks are bounded by the slab size (via ``fifo_handles``), so a
    tampered link cycle shows up as a length mismatch instead of hanging
    the auditor.

    Returns the pool's index contents so callers can cross-check further.
    """
    label = f"pool {pool.pool_id} ({pool.name!r})"
    table = pool.table
    slots = len(table.kind)
    index: Dict[BlockKey, StoreKind] = {}
    seen_handles: Dict[int, BlockKey] = {}
    for inode, tree in pool.files.items():
        if not tree:
            violations.append(f"{label}: empty block index left behind for inode {inode}")
        for block, handle in tree.items():
            key = (inode, block)
            if not 0 <= handle < slots:
                violations.append(
                    f"{label}: index entry {key} holds out-of-range "
                    f"handle {handle} (slab has {slots} slots)"
                )
                continue
            code = table.kind[handle]
            if code == 0 or code >= len(_CODE_KINDS):
                violations.append(
                    f"{label}: index entry {key} points at slot {handle} "
                    f"with store code {code} (free or unknown)"
                )
                continue
            if table.inode[handle] != inode or table.block[handle] != block:
                violations.append(
                    f"{label}: slab slot {handle} records identity "
                    f"({table.inode[handle]}, {table.block[handle]}) but "
                    f"the index filed it under {key}"
                )
            other = seen_handles.get(handle)
            if other is not None:
                violations.append(
                    f"{label}: handle {handle} indexed twice "
                    f"({other} and {key})"
                )
            seen_handles[handle] = key
            index[key] = _CODE_KINDS[code]
    for kind in _KINDS:
        fifo = pool.fifos[kind]
        if len(fifo) != pool.used[kind]:
            violations.append(
                f"{label}: {kind} FIFO holds {len(fifo)} keys but "
                f"pool.used[{kind}] is {pool.used[kind]}"
            )
        if pool.used[kind] < 0:
            violations.append(f"{label}: negative pool.used[{kind}] = {pool.used[kind]}")
        for key in fifo:
            indexed = index.get(key)
            if indexed is not kind:
                violations.append(
                    f"{label}: FIFO key {key} in the {kind} queue but the "
                    f"block index says {indexed}"
                )
    fifo_total = sum(len(pool.fifos[kind]) for kind in _KINDS)
    if len(index) != fifo_total:
        violations.append(
            f"{label}: block index holds {len(index)} blocks but the FIFOs "
            f"hold {fifo_total}"
        )
    # Independent third record: sweep the slab's kind plane and compare
    # per-store occupancy against the pool's usage counters.
    occupancy = table.occupancy()
    for kind in _KINDS:
        code = _CODE_OF[kind]
        counted = occupancy[code] if code < len(occupancy) else 0
        if counted != pool.used[kind]:
            violations.append(
                f"{label}: slab sweep counts {counted} live {kind} slots "
                f"but pool.used[{kind}] is {pool.used[kind]}"
            )
    return index


def _check_registry(cache, violations: List[str]) -> None:
    """``_pools`` (the flat id map) must mirror the per-VM pool tables."""
    via_vms = {}
    for vm_id, vm in cache.vms.items():
        for pool_id, pool in vm.pools.items():
            via_vms[pool_id] = pool
            if pool.vm_id != vm_id:
                violations.append(
                    f"pool {pool_id} registered under VM {vm_id} but "
                    f"carries vm_id {pool.vm_id}"
                )
            if not pool.active:
                violations.append(f"pool {pool_id} is registered but inactive")
    if via_vms.keys() != cache._pools.keys():
        violations.append(
            f"pool registry mismatch: VMs know {sorted(via_vms)} but the "
            f"flat map knows {sorted(cache._pools)}"
        )
    for pool_id, pool in cache._pools.items():
        if via_vms.get(pool_id) is not pool:
            violations.append(f"pool {pool_id}: flat map and VM table disagree")


def _check_doubledecker(cache) -> List[str]:
    violations: List[str] = []
    _check_registry(cache, violations)

    # -- per-pool structures + per-store sums ---------------------------
    totals = {kind: 0 for kind in _KINDS}
    for pool in cache._pools.values():
        _check_pool_structures(pool, violations)
        for kind in _KINDS:
            totals[kind] += pool.used[kind]
    for kind in _KINDS:
        if cache.used[kind] != totals[kind]:
            violations.append(
                f"manager.used[{kind}] = {cache.used[kind]} but pools hold "
                f"{totals[kind]}"
            )
        if cache.used[kind] < 0:
            violations.append(f"negative manager.used[{kind}] = {cache.used[kind]}")

    # -- capacity bounds ------------------------------------------------
    if cache.used[_SSD] > cache.capacities[_SSD]:
        violations.append(
            f"SSD store over capacity: {cache.used[_SSD]} > "
            f"{cache.capacities[_SSD]} blocks"
        )
    if cache._mem_units_used > cache._mem_units_capacity:
        violations.append(
            f"memory store over capacity: {cache._mem_units_used} > "
            f"{cache._mem_units_capacity} units"
        )
    if cache.compression is None and cache.dedup is None:
        if cache.used[_MEMORY] > cache.capacities[_MEMORY]:
            violations.append(
                f"memory store over capacity: {cache.used[_MEMORY]} > "
                f"{cache.capacities[_MEMORY]} blocks"
            )

    # -- lending conservation -------------------------------------------
    # The effective store size must equal owned capacity adjusted by the
    # fleet coordinator's grants; outside a fleet all grants are zero and
    # this reduces to capacities == _base_capacity.
    for kind in _KINDS:
        lend_in = cache.lend_in[kind]
        lend_out = cache.lend_out[kind]
        expected = cache._base_capacity[kind] + lend_in - lend_out
        if cache.capacities[kind] != expected:
            violations.append(
                f"lending accounting broken for {kind}: effective capacity "
                f"{cache.capacities[kind]} != base "
                f"{cache._base_capacity[kind]} + in {lend_in} - out {lend_out}"
            )
        if lend_in < 0 or lend_out < 0 or lend_out > cache._base_capacity[kind]:
            violations.append(
                f"lend grants out of range for {kind}: in {lend_in}, "
                f"out {lend_out} of base {cache._base_capacity[kind]}"
            )

    # -- memory units / dedup ground truth ------------------------------
    resident: List[Tuple[int, int, int]] = []
    for pool in cache._pools.values():
        for inode, block in pool.fifos[_MEMORY]:
            resident.append((pool.vm_id, inode, block))
    fingerprint = cache._fingerprint
    compression = cache.compression

    def units_of(fp: int) -> int:
        return 1 if compression is None else compression.charged_units(fp)

    dedup = cache.dedup
    if dedup is None:
        expected_units = sum(
            units_of(fingerprint(vm_id, inode, block))
            for vm_id, inode, block in resident
        )
    else:
        if len(set(resident)) != len(resident):
            duplicated = [key for key, count in Counter(resident).items() if count > 1]
            violations.append(
                "dedup placement contract violated: (inode, block) keys "
                f"cached twice within one VM: {sorted(duplicated)[:5]}"
            )
        placed = set(dedup._placed)
        if placed != set(resident):
            missing = sorted(set(resident) - placed)[:5]
            stale = sorted(placed - set(resident))[:5]
            violations.append(
                f"dedup index out of sync: missing={missing} stale={stale}"
            )
        if dedup.logical_blocks != len(resident):
            violations.append(
                f"dedup logical_blocks = {dedup.logical_blocks} but "
                f"{len(resident)} blocks are memory-resident"
            )
        recomputed = Counter(
            fingerprint(vm_id, inode, block) for vm_id, inode, block in set(resident)
        )
        if dict(recomputed) != dedup._refcounts:
            violations.append(
                f"dedup refcounts diverge from recomputed fingerprints "
                f"({len(dedup._refcounts)} tracked vs {len(recomputed)} recomputed)"
            )
        expected_units = sum(units_of(fp) for fp in recomputed)
    if cache._mem_units_used != expected_units:
        violations.append(
            f"_mem_units_used = {cache._mem_units_used} but ground truth "
            f"recomputes {expected_units} units"
        )

    # -- put-outcome ledger (endurance accounting) ----------------------
    # Every put is stored or lands in exactly one rejection bucket, so
    # admission/backpressure rejections can never be silently dropped.
    for pool in cache._pools.values():
        stats = pool.stats
        accounted = (
            stats.puts_stored
            + stats.put_rejected_policy
            + stats.put_rejected_capacity
            + stats.put_rejected_admission
            + stats.put_rejected_backpressure
        )
        if stats.puts != accounted:
            violations.append(
                f"pool {pool.pool_id} ({pool.name!r}): put ledger leaks — "
                f"{stats.puts} puts but {accounted} accounted "
                f"(stored {stats.puts_stored}, policy "
                f"{stats.put_rejected_policy}, capacity "
                f"{stats.put_rejected_capacity}, admission "
                f"{stats.put_rejected_admission}, backpressure "
                f"{stats.put_rejected_backpressure})"
            )
        admission = pool.admission
        if admission is not None:
            if admission.attempts != admission.admitted + admission.rejected:
                violations.append(
                    f"pool {pool.pool_id}: admission ledger leaks — "
                    f"{admission.attempts} attempts but "
                    f"{admission.admitted} admitted + "
                    f"{admission.rejected} rejected"
                )
            # The controller says no exactly when a put/trickle admission
            # rejection is recorded; the pool counters can only exceed the
            # live controller's if set_policy swapped in a fresh one.
            pool_rejects = (
                stats.put_rejected_admission + stats.trickle_rejected_admission
            )
            if pool_rejects < admission.rejected:
                violations.append(
                    f"pool {pool.pool_id}: admission controller counted "
                    f"{admission.rejected} rejections but the pool only "
                    f"recorded {pool_rejects}"
                )

    # -- SSD backend occupancy + write reconciliation -------------------
    backend = cache.ssd_backend
    if backend is not None:
        if not 0 <= backend.pending_blocks <= backend._buffer_capacity_blocks:
            violations.append(
                f"SSD write buffer occupancy out of bounds: "
                f"{backend.pending_blocks} of {backend._buffer_capacity_blocks}"
            )
        if backend.writes_enqueued != backend.blocks_written + backend.pending_blocks:
            violations.append(
                f"SSD write buffer leaks blocks: {backend.writes_enqueued} "
                f"enqueued but {backend.blocks_written} written + "
                f"{backend.pending_blocks} pending"
            )
        pool_writes = sum(
            pool.stats.ssd_writes for pool in cache._pools.values()
        ) + cache._ssd_writes_destroyed
        if pool_writes != backend.writes_enqueued:
            violations.append(
                f"per-pool SSD writes do not reconcile with the store: "
                f"pools enqueued {pool_writes} blocks but the backend "
                f"counted {backend.writes_enqueued}"
            )
        device = backend.device
        wear = device.wear
        if wear is not None:
            if wear.host_bytes_written != device.stats.bytes_written:
                violations.append(
                    f"wear model out of sync with device stats: "
                    f"{wear.host_bytes_written} wear bytes vs "
                    f"{device.stats.bytes_written} device bytes written"
                )
        if device.stats.bytes_written != device.stats.blocks_written * device.block_bytes:
            violations.append(
                f"device byte/block counters diverge: "
                f"{device.stats.bytes_written} bytes vs "
                f"{device.stats.blocks_written} blocks x {device.block_bytes}"
            )

    # -- store-counter ledger (per-kind monotone counters) --------------
    # Every StoreStats counter reconciles against the per-pool ledger or
    # an internal shape invariant, so drift in the per-store aggregates
    # is caught exactly like drift in the pool counters (DD014).
    store_counters = cache.store_counters
    for kind in _KINDS:
        counters = store_counters[kind]
        # A round is counted only when it evicted at least one block.
        if counters.evictions < counters.eviction_rounds:
            violations.append(
                f"{counters.kind} store: {counters.eviction_rounds} "
                f"eviction rounds but only {counters.evictions} evictions "
                f"(every counted round evicts at least one block)"
            )
        if counters.evictions > 0 and counters.eviction_rounds == 0:
            violations.append(
                f"{counters.kind} store: {counters.evictions} evictions "
                f"recorded outside any eviction round"
            )
        if (counters.rejected_admission + counters.rejected_backpressure
                > counters.rejected_puts):
            violations.append(
                f"{counters.kind} store: rejection sub-buckets exceed "
                f"rejected_puts ({counters.rejected_admission} admission + "
                f"{counters.rejected_backpressure} backpressure > "
                f"{counters.rejected_puts})"
            )
    store_evictions = sum(store_counters[kind].evictions for kind in _KINDS)
    pool_evictions = sum(
        pool.stats.evictions for pool in cache._pools.values()
    ) + cache._evictions_destroyed
    if store_evictions != pool_evictions:
        violations.append(
            f"per-store evictions do not reconcile with the pools: "
            f"stores counted {store_evictions} but pools recorded "
            f"{pool_evictions}"
        )
    store_rejected = sum(store_counters[kind].rejected_puts for kind in _KINDS)
    pool_rejected = sum(
        pool.stats.put_rejected_policy
        + pool.stats.put_rejected_capacity
        + pool.stats.put_rejected_admission
        + pool.stats.put_rejected_backpressure
        for pool in cache._pools.values()
    ) + cache._put_rejected_destroyed
    if store_rejected != pool_rejected:
        violations.append(
            f"per-store rejected_puts do not reconcile with the pool "
            f"put-outcome ledger: stores counted {store_rejected} but "
            f"pools recorded {pool_rejected}"
        )
    store_rejected_admission = sum(
        store_counters[kind].rejected_admission for kind in _KINDS)
    pool_rejected_admission = sum(
        pool.stats.put_rejected_admission for pool in cache._pools.values()
    ) + cache._put_rejected_admission_destroyed
    if store_rejected_admission != pool_rejected_admission:
        violations.append(
            f"per-store rejected_admission does not reconcile: stores "
            f"counted {store_rejected_admission} but pools recorded "
            f"{pool_rejected_admission}"
        )
    store_rejected_backpressure = sum(
        store_counters[kind].rejected_backpressure for kind in _KINDS)
    pool_rejected_backpressure = sum(
        pool.stats.put_rejected_backpressure for pool in cache._pools.values()
    ) + cache._put_rejected_backpressure_destroyed
    if store_rejected_backpressure != pool_rejected_backpressure:
        violations.append(
            f"per-store rejected_backpressure does not reconcile: stores "
            f"counted {store_rejected_backpressure} but pools recorded "
            f"{pool_rejected_backpressure}"
        )

    # -- entitlement freshness (shadow recompute, then restore) ---------
    pool_snapshot = {
        (pool.pool_id, kind): pool.entitlement[kind]
        for pool in cache._pools.values()
        for kind in _KINDS
    }
    try:
        expected_vm = recompute_entitlements(cache.vms, cache.capacities)
        if expected_vm != cache._vm_entitlements:
            violations.append(
                "stale VM entitlements: a configuration change was not "
                "followed by _recompute()"
            )
        for pool in cache._pools.values():
            for kind in _KINDS:
                stale = pool_snapshot[(pool.pool_id, kind)]
                if pool.entitlement[kind] != stale:
                    violations.append(
                        f"pool {pool.pool_id}: stale {kind} entitlement "
                        f"{stale}, recompute gives {pool.entitlement[kind]}"
                    )
    finally:
        # The auditor must be side-effect free even when it finds drift.
        for pool in cache._pools.values():
            for kind in _KINDS:
                pool.entitlement[kind] = pool_snapshot[(pool.pool_id, kind)]

    # -- decision-provenance ledger (observability cross-check) ---------
    # Two independent records of the same ops: the tracer's per-pool
    # provenance ledger must equal the shadow-accounted pool counters.
    from ..obs import tracer as _obs
    tracer = _obs.ACTIVE
    if tracer is not None:
        violations.extend(_obs.ledger_violations(tracer, cache))

    return violations


def _check_pool_table(cache) -> List[str]:
    """Shared checks for the memory-backed baselines."""
    from .baselines import GlobalCache

    violations: List[str] = []
    _check_registry(cache, violations)
    total = 0
    indexes: Dict[int, Dict[BlockKey, StoreKind]] = {}
    for pool in cache._pools.values():
        index = _check_pool_structures(pool, violations)
        indexes[pool.pool_id] = index
        if pool.used[_SSD]:
            violations.append(
                f"pool {pool.pool_id}: baseline caches are memory-backed "
                f"but {pool.used[_SSD]} SSD blocks are recorded"
            )
        total += len(pool)
    if cache.used_blocks != total:
        violations.append(
            f"used_blocks = {cache.used_blocks} but pools hold {total}"
        )
    if not 0 <= cache.used_blocks <= max(0, cache.capacity_blocks):
        violations.append(
            f"used_blocks = {cache.used_blocks} outside "
            f"[0, {cache.capacity_blocks}]"
        )
    if isinstance(cache, GlobalCache):
        live_fifo = 0
        for pool_id, inode, block in cache._fifo:
            index = indexes.get(pool_id)
            if index is None:
                continue  # stale entry of a destroyed pool (tolerated)
            live_fifo += 1
            if (inode, block) not in index:
                violations.append(
                    f"global FIFO entry ({pool_id}, {inode}, {block}) "
                    f"missing from its pool"
                )
        if live_fifo != total:
            violations.append(
                f"global FIFO tracks {live_fifo} live blocks but pools "
                f"hold {total} — untracked blocks can never be evicted"
            )
    return violations


# ----------------------------------------------------------------------
# Reference models (brute-force, dict-based, no timing)
# ----------------------------------------------------------------------

def _new_stats() -> Dict[str, int]:
    return {
        "gets": 0, "get_hits": 0, "puts": 0, "puts_stored": 0,
        "flushes": 0, "flush_requests": 0, "evictions": 0,
        "migrated_in": 0, "migrated_out": 0, "migrated_rejected": 0,
        "put_rejected_policy": 0, "put_rejected_capacity": 0,
        "put_rejected_admission": 0, "put_rejected_backpressure": 0,
        "trickle_rejected_admission": 0, "ssd_writes": 0,
    }


class _RefAdmission:
    """Independent restatement of the admission semantics for the
    reference model: a plain-list ghost FIFO (``second_access``) or
    unconditional admit (``admit_all``).  ``write_throttle`` depends on
    the simulation clock, which the reference does not model, so
    differential corners must not select it."""

    def __init__(self, name: str, ghost_blocks: int) -> None:
        if name == "write_throttle":
            raise NotImplementedError(
                "write_throttle is time-based; the untimed reference "
                "model cannot mirror it"
            )
        self.name = name
        self.ghost_blocks = ghost_blocks
        self.ghost: List[BlockKey] = []
        self.attempts = 0
        self.admitted = 0
        self.rejected = 0

    def admit(self, key: BlockKey) -> bool:
        self.attempts += 1
        if self.name == "admit_all":
            self.admitted += 1
            return True
        if key in self.ghost:
            self.ghost.remove(key)
            self.admitted += 1
            return True
        self.ghost.append(key)
        if len(self.ghost) > self.ghost_blocks:
            self.ghost.pop(0)
        self.rejected += 1
        return False


class _RefPool:
    """A pool as two flat structures: a key->store dict and per-store
    insertion-ordered lists (the FIFO)."""

    def __init__(self, pool_id: int, vm_id: int, name: str, policy: CachePolicy) -> None:
        self.pool_id = pool_id
        self.vm_id = vm_id
        self.name = name
        self.policy = policy
        self.blocks: Dict[BlockKey, StoreKind] = {}
        self.order: Dict[StoreKind, List[BlockKey]] = {_MEMORY: [], _SSD: []}
        self.entitlement: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        self.stats = _new_stats()
        self.admission: Optional[_RefAdmission] = None

    def used(self, kind: StoreKind) -> int:
        return len(self.order[kind])

    def insert(self, inode: int, block: int, kind: StoreKind) -> None:
        key = (inode, block)
        previous = self.blocks.get(key)
        if previous is not None:
            self.order[previous].remove(key)
        self.blocks[key] = kind
        self.order[kind].append(key)

    def remove(self, key: BlockKey) -> Optional[StoreKind]:
        kind = self.blocks.pop(key, None)
        if kind is not None:
            self.order[kind].remove(key)
        return kind

    def pop_oldest(self, kind: StoreKind) -> Optional[BlockKey]:
        if not self.order[kind]:
            return None
        key = self.order[kind].pop(0)
        del self.blocks[key]
        return key


class _RefVM:
    def __init__(self, vm_id: int, name: str, weight: float) -> None:
        self.vm_id = vm_id
        self.name = name
        self.weight = weight
        self.pools: Dict[int, _RefPool] = {}

    def used(self, kind: StoreKind) -> int:
        return sum(pool.used(kind) for pool in self.pools.values())

    def weighted_pools(self, kind: StoreKind) -> List[_RefPool]:
        return [
            pool for pool in self.pools.values()
            if pool.policy.weight_for(kind) > 0
        ]


def _alg1_victim(entities: Sequence[Tuple[Any, int, int, float]], batch: int):
    """Algorithm 1 over ``(ref, entitlement, used, weightage)`` tuples —
    an independent re-statement of :func:`repro.core.victim.get_victim`."""
    overused = []
    cumulative_weight = 0.0
    slack = 0
    for entity in entities:
        if entity[1] < entity[2] + batch:
            overused.append(entity)
            cumulative_weight += entity[3]
        if entity[1] - entity[2] > 2 * batch:
            slack += entity[1] - entity[2]
    candidates = [entity for entity in overused if entity[2] > 0]
    if not candidates:
        return None

    def exceed(entity):
        if cumulative_weight > 0:
            redistributed = slack * entity[3] / cumulative_weight
        else:
            redistributed = 0.0
        return entity[2] + batch - (entity[1] + redistributed)

    best = candidates[0]
    best_exceed = exceed(best)
    for entity in candidates[1:]:
        value = exceed(entity)
        if value > best_exceed:
            best, best_exceed = entity, value
    return best


def _max_used_victim(entities: Sequence[Tuple[Any, int, int, float]]):
    holders = [entity for entity in entities if entity[2] > 0]
    if not holders:
        return None
    return max(holders, key=lambda entity: entity[2])


class ReferenceCache:
    """Brute-force model of :class:`DoubleDeckerCache` semantics.

    Same policies, same Algorithm-1 victim selection, same FIFO eviction,
    hybrid spill, trickle-down, compression units, and dedup refcounts —
    but implemented over plain dicts and lists, with entitlements stored
    per pool and recomputed at the same trigger points as the manager.
    Timing is not modeled; the SSD write buffer is assumed to never
    reject (differential harnesses should configure the production cache
    with a large ``ssd_write_buffer_mb`` so both sides agree).
    """

    def __init__(self, config: DDConfig, block_bytes: int, has_ssd: bool) -> None:
        self.config = config
        self.block_bytes = block_bytes
        self.has_ssd = has_ssd
        self.capacities: Dict[StoreKind, int] = {
            _MEMORY: int(config.mem_capacity_mb * MB) // block_bytes,
            _SSD: int(config.ssd_capacity_mb * MB) // block_bytes,
        }
        self.used: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        self._base_capacity: Dict[StoreKind, int] = dict(self.capacities)
        self.lend_in: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        self.lend_out: Dict[StoreKind, int] = {_MEMORY: 0, _SSD: 0}
        self.compression = config.compression
        self._gran = config.compression.granularity if config.compression else 1
        self._units_capacity = self.capacities[_MEMORY] * self._gran
        self._units_used = 0
        self._fingerprint = config.dedup_fingerprint or content_fingerprint
        self._dedup = bool(config.dedup)
        self._placed: Dict[Tuple[int, int, int], int] = {}
        self._refcounts: Dict[int, int] = {}
        self.vms: Dict[int, _RefVM] = {}
        self.pools: Dict[int, _RefPool] = {}
        self._next_vm_id = 1
        self._next_pool_id = 1
        self._vm_entitlements: Dict[Tuple[int, StoreKind], int] = {}
        self._batch = max(1, int(config.eviction_batch_mb * MB) // block_bytes)

    # -- lifecycle -------------------------------------------------------

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        self.vms[vm_id] = _RefVM(vm_id, name, weight)
        self._recompute()
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        vm = self.vms[vm_id]
        for pool_id in list(vm.pools):
            self.destroy_pool(vm_id, pool_id)
        del self.vms[vm_id]
        self._recompute()

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        self.vms[vm_id].weight = weight
        self._recompute()

    def set_capacity(self, kind: StoreKind, capacity_mb: float) -> None:
        if kind is _SSD and not self.has_ssd and capacity_mb > 0:
            raise ValueError("cannot size an SSD store without an SSD device")
        self._base_capacity[kind] = int(capacity_mb * MB) // self.block_bytes
        self._apply_capacity(kind)

    def set_lending(self, kind: StoreKind, lend_in: int = 0,
                    lend_out: int = 0) -> None:
        if lend_in < 0 or lend_out < 0:
            raise ValueError("lend grants must be non-negative")
        if lend_in and lend_out:
            raise ValueError("a store cannot lend and borrow simultaneously")
        if lend_out > self._base_capacity[kind]:
            raise ValueError("cannot lend more than the owned capacity")
        if (lend_in == self.lend_in[kind]
                and lend_out == self.lend_out[kind]):
            return
        self.lend_in[kind] = lend_in
        self.lend_out[kind] = lend_out
        self._apply_capacity(kind)

    def _apply_capacity(self, kind: StoreKind) -> None:
        self.capacities[kind] = (
            self._base_capacity[kind]
            + self.lend_in[kind] - self.lend_out[kind]
        )
        if kind is _MEMORY:
            self._units_capacity = self.capacities[kind] * self._gran
        self._recompute()
        if kind is _MEMORY:
            while self._units_used > self._units_capacity:
                if not self._evict_round(kind):
                    break
        else:
            while self.used[kind] > self.capacities[kind]:
                if not self._evict_round(kind):
                    break

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        vm = self.vms[vm_id]
        if policy.ssd_weight > 0 and not self.has_ssd:
            raise ValueError(f"pool {name!r} requests SSD but there is no SSD store")
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        pool = _RefPool(pool_id, vm_id, name, policy)
        pool.admission = self._build_admission(policy)
        vm.pools[pool_id] = pool
        self.pools[pool_id] = pool
        self._recompute()
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pool = self.vms[vm_id].pools[pool_id]
        self._drain_pool(pool)
        del self.vms[vm_id].pools[pool_id]
        del self.pools[pool_id]
        self._recompute()

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        pool = self.vms[vm_id].pools[pool_id]
        if policy.ssd_weight > 0 and not self.has_ssd:
            raise ValueError("policy requests SSD but there is no SSD store")
        # Mirror the manager: an unchanged admission policy keeps the live
        # controller (its ghost survives), a change builds a fresh one.
        old_name = pool.policy.admission or self.config.admission or default_admission()
        new_name = policy.admission or self.config.admission or default_admission()
        pool.policy = policy
        if new_name != old_name:
            pool.admission = self._build_admission(policy)
        self._recompute()
        if not policy.uses_cache and pool.blocks:
            self._drain_pool(pool)

    def _drain_pool(self, pool: _RefPool) -> None:
        for inode, block in list(pool.order[_MEMORY]):
            self._mem_release(pool.vm_id, inode, block)
        for kind in _KINDS:
            self.used[kind] -= pool.used(kind)
        pool.blocks.clear()
        pool.order[_MEMORY].clear()
        pool.order[_SSD].clear()

    # -- data path -------------------------------------------------------

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> Set[BlockKey]:
        pool = self.vms[vm_id].pools[pool_id]
        pool.stats["gets"] += len(keys)
        found: Set[BlockKey] = set()
        for key in keys:
            kind = pool.remove(key)
            if kind is None:
                continue
            self.used[kind] -= 1
            if kind is _MEMORY:
                self._mem_release(vm_id, key[0], key[1])
            found.add(key)
        pool.stats["get_hits"] += len(found)
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        pool.stats["puts"] += len(keys)
        policy = pool.policy
        if not policy.uses_cache:
            pool.stats["put_rejected_policy"] += len(keys)
            return 0
        if policy.is_hybrid:
            fixed_kind = None
        elif policy.mem_weight > 0:
            fixed_kind = _MEMORY
        else:
            fixed_kind = _SSD
        stored = 0
        admission = pool.admission
        for key in keys:
            inode, block = key
            existing = pool.remove(key)
            if existing is not None:
                self.used[existing] -= 1
                if existing is _MEMORY:
                    self._mem_release(vm_id, inode, block)
            kind = fixed_kind
            if kind is None:
                if pool.used(_MEMORY) < pool.entitlement[_MEMORY]:
                    kind = _MEMORY
                else:
                    kind = _SSD
            if kind is _SSD and admission is not None and not admission.admit(key):
                pool.stats["put_rejected_admission"] += 1
                continue
            if not self._make_room(kind, 1):
                pool.stats["put_rejected_capacity"] += 1
                continue
            if kind is _SSD:
                pool.stats["ssd_writes"] += 1
            pool.insert(inode, block, kind)
            self.used[kind] += 1
            if kind is _MEMORY:
                self._mem_charge(vm_id, inode, block)
            stored += 1
        pool.stats["puts_stored"] += stored
        return stored

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        dropped = 0
        for key in keys:
            kind = pool.remove(key)
            if kind is not None:
                self.used[kind] -= 1
                if kind is _MEMORY:
                    self._mem_release(vm_id, key[0], key[1])
                dropped += 1
        pool.stats["flush_requests"] += len(keys)
        pool.stats["flushes"] += dropped
        return dropped

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        keys = [key for key in list(pool.blocks) if key[0] == inode]
        dropped = 0
        for key in keys:
            kind = pool.remove(key)
            self.used[kind] -= 1
            if kind is _MEMORY:
                self._mem_release(vm_id, key[0], key[1])
            dropped += 1
        # Requested semantics, mirroring the manager's flush_inode.
        pool.stats["flush_requests"] += dropped if nblocks is None else nblocks
        pool.stats["flushes"] += dropped
        return dropped

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        source = self.vms[vm_id].pools[from_pool]
        target = self.vms[vm_id].pools[to_pool]
        if from_pool == to_pool:
            return 0
        moves = [(key, kind) for key, kind in pool_items(source) if key[0] == inode]
        moved = 0
        rejected = 0
        for key, kind in moves:
            if target.policy.weight_for(kind) <= 0:
                rejected += 1
                continue
            source.remove(key)
            target.insert(key[0], key[1], kind)
            moved += 1
        if moved:
            source.stats["migrated_out"] += moved
            target.stats["migrated_in"] += moved
        if rejected:
            source.stats["migrated_rejected"] += rejected
        return moved

    # -- internals -------------------------------------------------------

    def _build_admission(self, policy: CachePolicy) -> Optional[_RefAdmission]:
        """Same resolution order and ghost sizing as the manager's
        ``_build_admission``, restated over the reference structures."""
        if not self.has_ssd:
            return None
        name = policy.admission or self.config.admission or default_admission()
        if not name:
            return None
        if self.config.admission_ghost_mb > 0:
            ghost_blocks = max(
                1, int(self.config.admission_ghost_mb * MB) // self.block_bytes
            )
        else:
            ghost_blocks = max(1, self.capacities[_SSD])
        return _RefAdmission(name, ghost_blocks)

    def _units_of(self, fp: int) -> int:
        return 1 if self.compression is None else self.compression.charged_units(fp)

    def _mem_charge(self, vm_id: int, inode: int, block: int) -> None:
        fp = self._fingerprint(vm_id, inode, block)
        if self._dedup:
            key = (vm_id, inode, block)
            if key in self._placed:
                return
            self._placed[key] = fp
            count = self._refcounts.get(fp, 0)
            self._refcounts[fp] = count + 1
            if count:
                return
        self._units_used += self._units_of(fp)

    def _mem_release(self, vm_id: int, inode: int, block: int) -> None:
        fp = self._fingerprint(vm_id, inode, block)
        if self._dedup:
            key = (vm_id, inode, block)
            placed_fp = self._placed.pop(key, None)
            if placed_fp is None:
                return
            count = self._refcounts[placed_fp] - 1
            if count:
                self._refcounts[placed_fp] = count
                return
            del self._refcounts[placed_fp]
            fp = placed_fp
        self._units_used -= self._units_of(fp)

    def _recompute(self) -> None:
        """Entitlements, replicating ``repro.core.policy`` arithmetic."""
        self._vm_entitlements = {}
        for kind in _KINDS:
            capacity = self.capacities[kind]
            active = [
                vm for vm in self.vms.values()
                if vm.weight > 0 and vm.weighted_pools(kind)
            ]
            total_weight = sum(vm.weight for vm in active)
            shares: Dict[int, int] = {}
            if total_weight > 0 and capacity > 0:
                for vm in active:
                    shares[vm.vm_id] = int(capacity * vm.weight / total_weight)
            else:
                for vm in active:
                    shares[vm.vm_id] = 0
            for vm in self.vms.values():
                share = shares.get(vm.vm_id, 0)
                self._vm_entitlements[(vm.vm_id, kind)] = share
                pools = vm.weighted_pools(kind)
                pool_weight_total = sum(
                    pool.policy.weight_for(kind) for pool in pools
                )
                for pool in vm.pools.values():
                    if pool not in pools:
                        pool.entitlement[kind] = 0
                if not pools or pool_weight_total <= 0 or share <= 0:
                    for pool in pools:
                        pool.entitlement[kind] = 0
                    continue
                for pool in pools:
                    fraction = pool.policy.weight_for(kind) / pool_weight_total
                    pool.entitlement[kind] = int(share * fraction)

    def _make_room(self, kind: StoreKind, need: int) -> bool:
        capacity = self.capacities[kind]
        if capacity <= 0:
            return False
        guard = 0
        if kind is _MEMORY:
            need_units = need * self._gran
            while self._units_used + need_units > self._units_capacity:
                if not self._evict_round(kind):
                    return False
                guard += 1
                if guard > capacity:
                    return False
            return True
        while self.used[kind] + need > capacity:
            if not self._evict_round(kind):
                return False
            guard += 1
            if guard > capacity:
                return False
        return True

    def _select_victim(self, entities, batch):
        if not entities:
            return None
        if self.config.victim_policy == "max_used":
            return _max_used_victim(entities)
        victim = _alg1_victim(entities, batch)
        if victim is None:
            victim = _max_used_victim(entities)
        return victim

    def _evict_round(self, kind: StoreKind) -> bool:
        batch = self._batch
        vm_entities = []
        for vm in self.vms.values():
            weighted = bool(vm.weighted_pools(kind))
            used = vm.used(kind)
            if not weighted and used == 0:
                continue
            vm_entities.append((
                vm,
                self._vm_entitlements.get((vm.vm_id, kind), 0),
                used,
                vm.weight if weighted else 0.0,
            ))
        victim_vm = self._select_victim(vm_entities, batch)
        if victim_vm is None:
            return False
        vm = victim_vm[0]
        pool_entities = []
        for pool in vm.pools.values():
            weight = pool.policy.weight_for(kind)
            if weight <= 0 and pool.used(kind) == 0:
                continue
            pool_entities.append(
                (pool, pool.entitlement[kind], pool.used(kind), weight)
            )
        victim_pool = self._select_victim(pool_entities, batch)
        if victim_pool is None:
            return False
        pool = victim_pool[0]
        evicted = 0
        trickle: List[BlockKey] = []
        while evicted < batch and pool.used(kind) > 0:
            key = pool.pop_oldest(kind)
            if key is None:
                break
            self.used[kind] -= 1
            if kind is _MEMORY:
                self._mem_release(pool.vm_id, key[0], key[1])
            evicted += 1
            if (
                kind is _MEMORY
                and self.config.trickle_down
                and self.has_ssd
                and self.capacities[_SSD] > 0
            ):
                trickle.append(key)
        if evicted:
            pool.stats["evictions"] += evicted
            admission = pool.admission
            for key in trickle:
                if admission is not None and not admission.admit(key):
                    pool.stats["trickle_rejected_admission"] += 1
                    continue
                if not self._make_room(_SSD, 1):
                    break
                pool.insert(key[0], key[1], _SSD)
                self.used[_SSD] += 1
                pool.stats["ssd_writes"] += 1
            return True
        return False


def pool_items(pool: _RefPool) -> List[Tuple[BlockKey, StoreKind]]:
    """A reference pool's contents in ascending key order (the order
    ``RadixTree.items`` reports, which ``migrate_objects`` iterates)."""
    return sorted(pool.blocks.items())


class ReferenceGlobalCache:
    """Brute-force model of the tmem-like :class:`GlobalCache` baseline:
    one global FIFO list, per-VM caps, exclusive or inclusive hits."""

    def __init__(
        self,
        capacity_mb: float,
        block_bytes: int,
        per_vm_cap_mb: Optional[float] = None,
        exclusive: bool = True,
    ) -> None:
        self.capacity_blocks = int(capacity_mb * MB) // block_bytes
        self.per_vm_cap_blocks = (
            int(per_vm_cap_mb * MB) // block_bytes if per_vm_cap_mb else None
        )
        self.exclusive = exclusive
        self.used_blocks = 0
        self.vms: Dict[int, _RefVM] = {}
        self.pools: Dict[int, _RefPool] = {}
        self._next_vm_id = 1
        self._next_pool_id = 1
        self._fifo: List[Tuple[int, int, int]] = []

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        self.vms[vm_id] = _RefVM(vm_id, name, weight)
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        for pool_id in list(self.vms[vm_id].pools):
            self.destroy_pool(vm_id, pool_id)
        del self.vms[vm_id]

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        pool = _RefPool(pool_id, vm_id, name, CachePolicy.memory(100.0))
        self.vms[vm_id].pools[pool_id] = pool
        self.pools[pool_id] = pool
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pool = self.vms[vm_id].pools[pool_id]
        for inode, block in list(pool.blocks):
            pool.remove((inode, block))
            self.used_blocks -= 1
            self._fifo.remove((pool_id, inode, block))
        del self.vms[vm_id].pools[pool_id]
        del self.pools[pool_id]

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        self.vms[vm_id].pools[pool_id]  # baselines ignore container policy

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        return 0  # baselines key by filesystem; migration is a no-op

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> Set[BlockKey]:
        pool = self.vms[vm_id].pools[pool_id]
        pool.stats["gets"] += len(keys)
        found: Set[BlockKey] = set()
        for key in keys:
            if self.exclusive:
                if pool.remove(key) is not None:
                    found.add(key)
                    entry = (pool_id, key[0], key[1])
                    if entry in self._fifo:
                        self._fifo.remove(entry)
            elif key in pool.blocks:
                found.add(key)
        if self.exclusive:
            self.used_blocks -= len(found)
        pool.stats["get_hits"] += len(found)
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        vm = self.vms[vm_id]
        pool.stats["puts"] += len(keys)
        stored = 0
        for key in keys:
            if self.capacity_blocks <= 0:
                continue
            while self.used_blocks + 1 > self.capacity_blocks:
                if not self._evict_one():
                    break
            if self.used_blocks + 1 > self.capacity_blocks:
                continue
            if (
                self.per_vm_cap_blocks is not None
                and vm.used(_MEMORY) + 1 > self.per_vm_cap_blocks
            ):
                if not self._evict_one(vm_filter=vm_id):
                    continue
            inode, block = key
            if key not in pool.blocks:
                pool.insert(inode, block, _MEMORY)
                self.used_blocks += 1
                self._fifo.append((pool_id, inode, block))
                stored += 1
        pool.stats["puts_stored"] += stored
        return stored

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        dropped = 0
        for key in keys:
            if pool.remove(key) is not None:
                self.used_blocks -= 1
                self._fifo.remove((pool_id, key[0], key[1]))
                dropped += 1
        pool.stats["flush_requests"] += len(keys)
        pool.stats["flushes"] += dropped
        return dropped

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        keys = [key for key in list(pool.blocks) if key[0] == inode]
        for key in keys:
            pool.remove(key)
            self.used_blocks -= 1
            self._fifo.remove((pool_id, key[0], key[1]))
        pool.stats["flush_requests"] += (
            len(keys) if nblocks is None else nblocks)
        pool.stats["flushes"] += len(keys)
        return len(keys)

    def _evict_one(self, vm_filter: Optional[int] = None) -> bool:
        target = None
        if vm_filter is None:
            if self._fifo:
                target = self._fifo[0]
        else:
            for entry in self._fifo:
                pool = self.pools.get(entry[0])
                if pool is not None and pool.vm_id == vm_filter:
                    target = entry
                    break
        if target is None:
            return False
        self._fifo.remove(target)
        pool_id, inode, block = target
        pool = self.pools.get(pool_id)
        if pool is None:
            return True
        if pool.remove((inode, block)) is not None:
            self.used_blocks -= 1
            pool.stats["evictions"] += 1
        return True


class ReferenceStaticCache:
    """Brute-force model of :class:`StaticPartitionCache`: hard per-pool
    caps with self-eviction, no redistribution."""

    def __init__(self, capacity_mb: float, block_bytes: int) -> None:
        self.block_bytes = block_bytes
        self.capacity_blocks = int(capacity_mb * MB) // block_bytes
        self.used_blocks = 0
        self.vms: Dict[int, _RefVM] = {}
        self.pools: Dict[int, _RefPool] = {}
        self._next_vm_id = 1
        self._next_pool_id = 1
        self._caps: Dict[int, int] = {}

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        self.vms[vm_id] = _RefVM(vm_id, name, weight)
        return vm_id

    def unregister_vm(self, vm_id: int) -> None:
        for pool_id in list(self.vms[vm_id].pools):
            self.destroy_pool(vm_id, pool_id)
        del self.vms[vm_id]

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> int:
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        pool = _RefPool(pool_id, vm_id, name, CachePolicy.memory(100.0))
        self.vms[vm_id].pools[pool_id] = pool
        self.pools[pool_id] = pool
        return pool_id

    def destroy_pool(self, vm_id: int, pool_id: int) -> None:
        pool = self.vms[vm_id].pools[pool_id]
        self.used_blocks -= len(pool.blocks)
        del self.vms[vm_id].pools[pool_id]
        del self.pools[pool_id]

    def set_policy(self, vm_id: int, pool_id: int, policy: CachePolicy) -> None:
        self.vms[vm_id].pools[pool_id]  # baselines ignore container policy

    def migrate_objects(self, vm_id: int, from_pool: int, to_pool: int, inode: int) -> int:
        return 0  # baselines key by filesystem; migration is a no-op

    def set_partition(self, pool_id: int, cap_mb: float) -> None:
        self._caps[pool_id] = int(cap_mb * MB) // self.block_bytes

    def get_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> Set[BlockKey]:
        pool = self.vms[vm_id].pools[pool_id]
        pool.stats["gets"] += len(keys)
        found: Set[BlockKey] = set()
        for key in keys:
            if pool.remove(key) is not None:
                found.add(key)
        self.used_blocks -= len(found)
        pool.stats["get_hits"] += len(found)
        return found

    def put_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        cap = self._caps.get(pool_id, 0)
        pool.stats["puts"] += len(keys)
        stored = 0
        for key in keys:
            if cap <= 0:
                continue
            while pool.used(_MEMORY) + 1 > cap:
                victim = pool.pop_oldest(_MEMORY)
                if victim is None:
                    break
                self.used_blocks -= 1
                pool.stats["evictions"] += 1
            if pool.used(_MEMORY) + 1 > cap:
                continue
            if key not in pool.blocks:
                pool.insert(key[0], key[1], _MEMORY)
                self.used_blocks += 1
                stored += 1
        pool.stats["puts_stored"] += stored
        return stored

    def flush_many(self, vm_id: int, pool_id: int, keys: Sequence[BlockKey]) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        dropped = 0
        for key in keys:
            if pool.remove(key) is not None:
                self.used_blocks -= 1
                dropped += 1
        pool.stats["flush_requests"] += len(keys)
        pool.stats["flushes"] += dropped
        return dropped

    def flush_inode(self, vm_id: int, pool_id: int, inode: int,
                    nblocks: Optional[int] = None) -> int:
        pool = self.vms[vm_id].pools[pool_id]
        keys = [key for key in list(pool.blocks) if key[0] == inode]
        for key in keys:
            pool.remove(key)
            self.used_blocks -= 1
        pool.stats["flush_requests"] += (
            len(keys) if nblocks is None else nblocks)
        pool.stats["flushes"] += len(keys)
        return len(keys)
