"""Storage optimizations: in-band compression and content deduplication.

The paper lists both as hypervisor-cache memory-efficiency levers
("perform in-band compression and deduplication", §1; cache-level dedup
is called out as directly incorporable in §6).  This module models them
at the granularity that matters for capacity accounting:

* :class:`CompressionModel` — each stored block compresses to a
  per-block ratio drawn deterministically from its key (so the same
  block always compresses the same way); the memory store then charges
  *compressed* sub-block units instead of whole blocks, trading extra
  CPU time per access (zcache's bargain).
* :class:`DedupIndex` — blocks carry content fingerprints; storing a
  block whose fingerprint is already resident only bumps a refcount.
  The simulation derives fingerprints from a configurable content map
  (workloads can declare files that share content, e.g., identical
  base-image files across containers/VMs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = ["CompressionModel", "DedupIndex", "content_fingerprint"]


@dataclass(frozen=True)
class CompressionModel:
    """Per-block compressibility and its CPU cost.

    ``min_ratio``/``max_ratio`` bound the compressed-size fraction; a
    block's ratio is a deterministic hash of its identity, so capacity
    accounting is stable across insert/evict cycles.  ``compress_us`` /
    ``decompress_us`` are charged per block on put/get (LZO-class costs
    for 64 KiB blocks by default).
    """

    min_ratio: float = 0.35
    max_ratio: float = 0.85
    compress_us: float = 25.0
    decompress_us: float = 12.0
    #: Capacity accounting granularity: a block is charged in 1/16ths.
    granularity: int = 16

    def __post_init__(self) -> None:
        if not (0.0 < self.min_ratio <= self.max_ratio <= 1.0):
            raise ValueError(f"bad ratio bounds: {self}")
        if self.granularity < 1:
            raise ValueError(f"granularity must be >= 1: {self}")

    def ratio_for(self, key: Hashable) -> float:
        """Deterministic compressed-size fraction for a block."""
        digest = hashlib.blake2s(repr(key).encode(), digest_size=4).digest()
        unit = int.from_bytes(digest, "big") / 0xFFFFFFFF
        return self.min_ratio + unit * (self.max_ratio - self.min_ratio)

    def charged_units(self, key: Hashable) -> int:
        """Sub-block units (out of ``granularity``) this block occupies."""
        ratio = self.ratio_for(key)
        return max(1, round(ratio * self.granularity))

    def compress_cost(self, nblocks: int) -> float:
        """Seconds of CPU to compress ``nblocks``."""
        return nblocks * self.compress_us * 1e-6

    def decompress_cost(self, nblocks: int) -> float:
        """Seconds of CPU to decompress ``nblocks``."""
        return nblocks * self.decompress_us * 1e-6


def content_fingerprint(namespace: Hashable, inode: int, block: int) -> int:
    """Default fingerprint: every (namespace, inode, block) is unique.

    Workloads that model shared content supply their own mapping (see
    :class:`DedupIndex`); this default makes dedup a no-op.
    """
    digest = hashlib.blake2s(
        f"{namespace}/{inode}/{block}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class DedupIndex:
    """Reference-counted content store for the memory backend.

    Tracks how many cached blocks share each fingerprint.  The *charged*
    footprint is the number of distinct fingerprints; the logical
    footprint is the number of stored blocks.  The savings ratio is what
    Table-style dedup evaluations report.
    """

    def __init__(
        self,
        fingerprint: Optional[Callable[[Hashable, int, int], int]] = None,
    ) -> None:
        self.fingerprint = fingerprint or content_fingerprint
        self._refcounts: Dict[int, int] = {}
        #: (namespace, inode, block) -> fingerprint, for removal.
        self._placed: Dict[Tuple[Hashable, int, int], int] = {}
        self.logical_blocks = 0
        self.dedup_hits = 0

    @property
    def unique_blocks(self) -> int:
        """Distinct fingerprints resident (the charged footprint)."""
        return len(self._refcounts)

    @property
    def savings_blocks(self) -> int:
        """Blocks of capacity saved by sharing."""
        return self.logical_blocks - self.unique_blocks

    def insert(self, namespace: Hashable, inode: int, block: int) -> bool:
        """Register a stored block; returns True if it was a *new* unique
        fingerprint (i.e., real capacity was consumed)."""
        key = (namespace, inode, block)
        if key in self._placed:
            return False  # already accounted
        fp = self.fingerprint(namespace, inode, block)
        self._placed[key] = fp
        self.logical_blocks += 1
        count = self._refcounts.get(fp, 0)
        self._refcounts[fp] = count + 1
        if count:
            self.dedup_hits += 1
            return False
        return True

    def remove(self, namespace: Hashable, inode: int, block: int) -> bool:
        """Unregister a block; returns True if its fingerprint became
        unreferenced (real capacity was released)."""
        key = (namespace, inode, block)
        fp = self._placed.pop(key, None)
        if fp is None:
            return False
        self.logical_blocks -= 1
        count = self._refcounts[fp] - 1
        if count == 0:
            del self._refcounts[fp]
            return True
        self._refcounts[fp] = count
        return False

    def holds(self, namespace: Hashable, inode: int, block: int) -> bool:
        return (namespace, inode, block) in self._placed
