"""Policy configuration types for the DoubleDecker cache.

The paper's per-container policy is a two-tuple ``<T, W>``: a store type
(memory or SSD) and a weight (percent of the VM's share of that store).
The hybrid mode sketched in §3.3 gives a container weights on *both*
stores, with the SSD used once the memory share is exhausted.  A single
:class:`CachePolicy` with two weights expresses all three cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .optimizations import CompressionModel

__all__ = ["StoreKind", "CachePolicy", "DDConfig"]


class StoreKind(enum.Enum):
    """Storage backends offered by the hypervisor cache."""

    MEMORY = "memory"
    SSD = "ssd"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # The data path hashes StoreKind millions of times as a dict key
    # (`used[kind]`, `fifos[kind]`, ...).  Enum.__hash__ is a Python-level
    # call; members are singletons compared by identity, so the C-level
    # identity hash is equivalent and much cheaper.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class CachePolicy:
    """Per-container cache specification (the paper's ``<T, W>`` tuple).

    ``mem_weight`` / ``ssd_weight`` are relative weights among the
    containers of the same VM for the respective store.  Exactly-one-store
    configurations (all the paper's headline experiments) set the other
    weight to zero; setting both enables the hybrid mode.
    """

    mem_weight: float = 0.0
    ssd_weight: float = 0.0
    #: Per-container admission policy for the SSD store ("admit_all",
    #: "second_access", "write_throttle"); ``None`` defers to
    #: ``DDConfig.admission`` and then the process-wide default.
    admission: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mem_weight < 0 or self.ssd_weight < 0:
            raise ValueError(f"weights must be non-negative: {self}")
        if self.admission is not None and self.admission not in (
            "admit_all", "second_access", "write_throttle"
        ):
            raise ValueError(f"unknown admission policy {self.admission!r}")

    @classmethod
    def memory(cls, weight: float) -> "CachePolicy":
        """``<Mem, weight>``."""
        return cls(mem_weight=weight)

    @classmethod
    def ssd(cls, weight: float, admission: Optional[str] = None) -> "CachePolicy":
        """``<SSD, weight>``."""
        return cls(ssd_weight=weight, admission=admission)

    @classmethod
    def hybrid(
        cls, mem_weight: float, ssd_weight: float, admission: Optional[str] = None
    ) -> "CachePolicy":
        """Hybrid: memory share first, spill to SSD share when exhausted."""
        return cls(mem_weight=mem_weight, ssd_weight=ssd_weight, admission=admission)

    @classmethod
    def none(cls) -> "CachePolicy":
        """Container does not participate in the hypervisor cache."""
        return cls()

    def weight_for(self, kind: StoreKind) -> float:
        """The weight applying to store ``kind``."""
        return self.mem_weight if kind is StoreKind.MEMORY else self.ssd_weight

    @property
    def uses_cache(self) -> bool:
        return self.mem_weight > 0 or self.ssd_weight > 0

    @property
    def is_hybrid(self) -> bool:
        return self.mem_weight > 0 and self.ssd_weight > 0


@dataclass(frozen=True)
class DDConfig:
    """Host-administrator configuration of the DoubleDecker store.

    ``eviction_batch_mb`` is the paper's small eviction batch (2 MB):
    when a store is full, one victim entity is chosen and at most this
    much is evicted from it before the store retries the put.
    ``trickle_down`` enables the third-chance path: blocks evicted from
    the memory store are re-homed to the SSD store instead of dropped.
    """

    mem_capacity_mb: float = 1024.0
    ssd_capacity_mb: float = 0.0
    eviction_batch_mb: float = 2.0
    trickle_down: bool = False
    ssd_write_buffer_mb: float = 64.0
    #: Victim selection: "exceed" is the paper's Algorithm 1; "max_used"
    #: is the naive largest-holder alternative (for ablation).
    victim_policy: str = "exceed"
    #: Optional in-band compression of the memory store (zcache-style):
    #: blocks are charged their compressed footprint, costing CPU per op.
    compression: Optional["CompressionModel"] = None
    #: Content deduplication of the memory store (§6 future work).
    dedup: bool = False
    #: Fingerprint function ``(namespace, inode, block) -> int`` declaring
    #: which blocks share content; default makes every block unique.
    dedup_fingerprint: Optional[Callable[[object, int, int], int]] = None
    #: Opt-in shadow-accounting self-check: every this many *simulated*
    #: seconds the cache audits its own cross-layer bookkeeping
    #: (:mod:`repro.core.audit`) and raises on any violation.  0 (the
    #: default) disables the auditor; ``python -m repro.experiments
    #: --audit`` enables it globally without touching configs.
    audit_interval: float = 0.0
    #: Default SSD admission policy for every pool of this cache
    #: ("admit_all", "second_access", "write_throttle").  ``None`` falls
    #: back to the process-wide default (``set_default_admission`` /
    #: the CLI ``--admission`` flag); per-pool ``CachePolicy.admission``
    #: overrides both.  With everything unset the admission hook is a
    #: strict no-op.
    admission: Optional[str] = None
    #: Ghost-FIFO size for ``second_access`` in MB of block metadata;
    #: 0 auto-sizes to the SSD store capacity.
    admission_ghost_mb: float = 0.0
    #: Token-bucket refill rate for ``write_throttle`` (MB/s of SSD puts).
    admission_write_mb_s: float = 8.0
    #: Token-bucket burst for ``write_throttle`` (MB).
    admission_burst_mb: float = 64.0

    def __post_init__(self) -> None:
        if self.mem_capacity_mb < 0 or self.ssd_capacity_mb < 0:
            raise ValueError(f"capacities must be non-negative: {self}")
        if self.eviction_batch_mb <= 0:
            raise ValueError(f"eviction batch must be positive: {self}")
        if self.victim_policy not in ("exceed", "max_used"):
            raise ValueError(f"unknown victim policy {self.victim_policy!r}")
        if self.audit_interval < 0:
            raise ValueError(f"audit interval must be non-negative: {self}")
        if self.admission is not None and self.admission not in (
            "admit_all", "second_access", "write_throttle"
        ):
            raise ValueError(f"unknown admission policy {self.admission!r}")
        if self.admission_ghost_mb < 0:
            raise ValueError(f"admission ghost must be non-negative: {self}")
        if self.admission_write_mb_s <= 0 or self.admission_burst_mb <= 0:
            raise ValueError(f"admission throttle rates must be positive: {self}")
