"""Statistics records returned by the cache's ``GET_STATS`` operation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PoolStats", "StoreStats"]


@dataclass
class PoolStats:
    """Per-pool (per-container) cache statistics.

    This is the payload of the paper's ``GET_STATS`` cleancache extension:
    it gives the in-VM policy controller visibility into each container's
    hypervisor-cache allocation and usage.
    """

    pool_id: int
    vm_id: int
    name: str
    mem_used_blocks: int = 0
    ssd_used_blocks: int = 0
    mem_entitlement_blocks: int = 0
    ssd_entitlement_blocks: int = 0
    gets: int = 0
    get_hits: int = 0
    puts: int = 0
    puts_stored: int = 0
    #: Blocks actually dropped by flush_many/flush_inode (drops, not asks).
    flushes: int = 0
    #: Blocks the guest asked to flush, whether or not they were resident.
    flush_requests: int = 0
    evictions: int = 0
    #: Blocks re-homed into/out of this pool by ``MIGRATE_OBJECT``.
    migrated_in: int = 0
    migrated_out: int = 0
    #: Blocks a ``MIGRATE_OBJECT`` left behind because the target pool's
    #: policy zero-weights their current store (partial migration).
    migrated_rejected: int = 0
    #: Put-outcome ledger: every put is stored or lands in exactly one of
    #: these buckets, so ``puts == puts_stored + put_rejected_*`` holds.
    put_rejected_policy: int = 0
    put_rejected_capacity: int = 0
    put_rejected_admission: int = 0
    put_rejected_backpressure: int = 0
    #: Trickle-down blocks the admission controller kept off the SSD
    #: (not part of the put ledger — trickles are internal migrations).
    trickle_rejected_admission: int = 0
    #: Blocks this pool enqueued toward the SSD device (puts + trickles).
    ssd_writes: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served by the cache."""
        return self.get_hits / self.gets if self.gets else 0.0

    @property
    def lookup_to_store_ratio(self) -> float:
        """Table 2's "lookup-to-store ratio": hits recovered per stored block.

        Expressed as a percentage of stored blocks that were later looked
        up successfully — a measure of how useful the pool's puts were.
        """
        return 100.0 * self.get_hits / self.puts_stored if self.puts_stored else 0.0


@dataclass
class StoreStats:
    """Whole-store statistics (one per backend kind)."""

    kind: str
    capacity_blocks: int = 0
    used_blocks: int = 0
    evictions: int = 0
    eviction_rounds: int = 0
    rejected_puts: int = 0
    #: Subset of ``rejected_puts`` refused by the admission controller.
    rejected_admission: int = 0
    #: Subset of ``rejected_puts`` refused by a full SSD write buffer.
    rejected_backpressure: int = 0

    @property
    def occupancy(self) -> float:
        return self.used_blocks / self.capacity_blocks if self.capacity_blocks else 0.0
