"""DoubleDecker's hypervisor cache: the paper's core contribution.

Public surface:

* :class:`DoubleDeckerCache` — the nesting-aware two-level weighted cache.
* :class:`GlobalCache` / :class:`StaticPartitionCache` /
  :class:`NullCache` — the baselines it is evaluated against.
* :class:`CachePolicy` / :class:`StoreKind` / :class:`DDConfig` — policy
  configuration (the paper's ``<T, W>`` tuples and host-admin settings).
* :func:`get_victim` — Algorithm 1, usable standalone.
* :func:`check_cache` / :func:`assert_consistent` — shadow-accounting
  invariant auditor (see :mod:`repro.core.audit`).
* Admission controllers (:mod:`repro.endurance`) are re-exported here for
  convenience: :class:`AdmitAll`, :class:`SecondAccessAdmit`,
  :class:`WriteRateThrottle`, :func:`set_default_admission`.
"""

from ..endurance import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmitAll,
    SecondAccessAdmit,
    WriteRateThrottle,
    default_admission,
    make_admission,
    set_default_admission,
)
from .audit import (
    InvariantViolation,
    ReferenceCache,
    ReferenceGlobalCache,
    ReferenceStaticCache,
    assert_consistent,
    assert_host_clean,
    check_cache,
    check_host,
    global_audit_interval,
    set_audit_interval,
    start_periodic_audit,
)
from .baselines import GlobalCache, StaticPartitionCache
from .cache_manager import DoubleDeckerCache
from .config import CachePolicy, DDConfig, StoreKind
from .engine import EvictionRound, PolicyEngine
from .interface import HypervisorCacheBase, NullCache
from .optimizations import CompressionModel, DedupIndex, content_fingerprint
from .pools import BlockKey, Pool, VMEntry
from .radix import BlockTable, RadixTree
from .stats import PoolStats, StoreStats
from .victim import EvictionEntity, exceed_value, fallback_victim, get_victim

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmitAll",
    "SecondAccessAdmit",
    "WriteRateThrottle",
    "default_admission",
    "make_admission",
    "set_default_admission",
    "BlockKey",
    "BlockTable",
    "CachePolicy",
    "InvariantViolation",
    "ReferenceCache",
    "ReferenceGlobalCache",
    "ReferenceStaticCache",
    "assert_consistent",
    "assert_host_clean",
    "check_cache",
    "check_host",
    "global_audit_interval",
    "set_audit_interval",
    "start_periodic_audit",
    "CompressionModel",
    "DedupIndex",
    "content_fingerprint",
    "DDConfig",
    "DoubleDeckerCache",
    "EvictionEntity",
    "EvictionRound",
    "PolicyEngine",
    "GlobalCache",
    "HypervisorCacheBase",
    "NullCache",
    "Pool",
    "PoolStats",
    "RadixTree",
    "StaticPartitionCache",
    "StoreKind",
    "StoreStats",
    "VMEntry",
    "exceed_value",
    "fallback_victim",
    "get_victim",
]
