"""A fixed-fanout radix tree over block offsets.

This mirrors the indexing structure DoubleDecker's hypervisor store uses
("per-pool file object hash table, file block radix-tree"): each file's
cached blocks live in one of these trees, keyed by block offset.

Fanout is 64 (6 bits per level); the tree grows in height lazily so small
files pay one node and multi-gigabyte files a handful of levels.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["RadixTree"]

_BITS = 6
_FANOUT = 1 << _BITS
_MASK = _FANOUT - 1


class _Node:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Any] = [None] * _FANOUT
        self.count = 0  # number of non-None slots


class RadixTree:
    """Maps non-negative integer keys (block offsets) to values."""

    __slots__ = ("_root", "_height", "_size")

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._height = 0  # number of levels; 0 means empty tree
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _required_height(key: int) -> int:
        # Equivalent to dividing the key's bit length into 6-bit digits;
        # bit_length() is a single C call vs. a Python shift loop.
        if key < _FANOUT:
            return 1
        return (key.bit_length() + _BITS - 1) // _BITS

    def _grow_to(self, height: int) -> None:
        if self._root is None:
            self._root = _Node()
            self._height = height
            return
        while self._height < height:
            node = _Node()
            node.slots[0] = self._root
            node.count = 1
            self._root = node
            self._height += 1

    # -- mapping operations ---------------------------------------------------

    def insert(self, key: int, value: Any) -> Any:
        """Set ``key`` to ``value``; returns the replaced value or ``None``.

        Returning the previous value lets callers fold the
        lookup-then-insert pair into a single tree descent.
        """
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        if value is None:
            raise ValueError("None values are reserved for empty slots")
        node = self._root
        if node is not None and self._height == 1 and key < _FANOUT:
            # Fast path: single-level tree (small files), no descent needed.
            previous = node.slots[key]
            if previous is None:
                node.count += 1
                self._size += 1
            node.slots[key] = value
            return previous
        self._grow_to(self._required_height(key))
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (level * _BITS)) & _MASK
            child = node.slots[idx]
            if child is None:
                child = _Node()
                node.slots[idx] = child
                node.count += 1
            node = child
        idx = key & _MASK
        previous = node.slots[idx]
        if previous is None:
            node.count += 1
            self._size += 1
        node.slots[idx] = value
        return previous

    def get(self, key: int, default: Any = None) -> Any:
        """Value at ``key``, or ``default`` if absent."""
        node = self._root
        if node is None or key < 0:
            return default
        height = self._height
        if height == 1:
            # Fast path: single-level tree (small files), no descent.
            if key >= _FANOUT:
                return default
            value = node.slots[key]
            return default if value is None else value
        if self._required_height(key) > height:
            return default
        for level in range(height - 1, 0, -1):
            node = node.slots[(key >> (level * _BITS)) & _MASK]
            if node is None:
                return default
        value = node.slots[key & _MASK]
        return default if value is None else value

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def remove(self, key: int) -> Any:
        """Delete ``key`` and return its value (``None`` if absent).

        Empty interior nodes are pruned so long-lived trees don't leak.
        """
        node = self._root
        if node is None or key < 0:
            return None
        if self._height == 1:
            # Fast path: single-level tree (small files) — no descent,
            # no path bookkeeping.
            if key >= _FANOUT:
                return None
            value = node.slots[key]
            if value is None:
                return None
            node.slots[key] = None
            node.count -= 1
            self._size -= 1
            if self._size == 0:
                self._root = None
                self._height = 0
            return value
        if self._required_height(key) > self._height:
            return None
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (level * _BITS)) & _MASK
            child = node.slots[idx]
            if child is None:
                return None
            path.append((node, idx))
            node = child
        idx = key & _MASK
        value = node.slots[idx]
        if value is None:
            return None
        node.slots[idx] = None
        node.count -= 1
        self._size -= 1
        # Prune now-empty nodes bottom-up.
        child = node
        for parent, pidx in reversed(path):
            if child.count:
                break
            parent.slots[pidx] = None
            parent.count -= 1
            child = parent
        if self._size == 0:
            self._root = None
            self._height = 0
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        if self._root is None:
            return
        stack: List[Tuple[_Node, int, int]] = [(self._root, self._height - 1, 0)]
        # Iterative DFS keeping the key prefix accumulated so far.
        while stack:
            node, level, prefix = stack.pop()
            if level == 0:
                for idx in range(_FANOUT):
                    value = node.slots[idx]
                    if value is not None:
                        yield (prefix | idx, value)
            else:
                # Push children in reverse so ascending order pops first.
                for idx in range(_FANOUT - 1, -1, -1):
                    child = node.slots[idx]
                    if child is not None:
                        stack.append(
                            (child, level - 1, prefix | (idx << (level * _BITS)))
                        )

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def clear(self) -> None:
        self._root = None
        self._height = 0
        self._size = 0
