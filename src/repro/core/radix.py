"""Block index structures for the hypervisor cache pools.

Two generations live here:

* :class:`BlockTable` — the production structure: a flat parallel-array
  slab keyed by integer *handles*, with intrusive doubly-linked FIFOs
  per store and a free-list threaded through the ``next`` array.  Pools
  index ``inode -> {block -> handle}``; all per-block state (identity,
  store, FIFO links) lives in the arrays, so the steady-state data path
  allocates no per-block Python objects at all.
* :class:`RadixTree` — the earlier per-block-object index (a fixed-fanout
  radix tree mirroring the paper's "file block radix-tree" description).
  Kept as a reference implementation and for the microbenchmark
  old-vs-new comparison; the pools no longer use it.

When numpy is importable the slab exposes vectorized sweep helpers
(occupancy counting over the ``kind`` byte plane); the mutation path is
identical pure Python either way, so results cannot depend on numpy
being present.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["BlockTable", "RadixTree", "NIL"]

#: Null handle / empty link sentinel in the slab arrays.
NIL = -1


class BlockTable:
    """Flat per-pool block state: parallel arrays indexed by handle.

    Parallel planes (one slot per handle)::

        inode  int64   owning file
        block  int64   block offset within the file
        kind   uint8   store code (0 = free slot, callers define 1..N)
        prev   int32   FIFO predecessor (newer -> older is next-direction)
        next   int32   FIFO successor, or next free handle for free slots

    Per store code there is one intrusive FIFO (``heads[code]`` is the
    oldest entry, ``tails[code]`` the newest); insertion links at the
    tail, eviction pops the head, a hit unlinks from the middle — all
    O(1) integer writes.  Freed handles go on a free-list threaded
    through ``next`` so the slab reuses slots before growing.
    """

    #: Store codes: slot empty / caller-defined stores.  Code 0 is
    #: reserved for free slots so a stale handle is cheap to detect.
    FREE = 0

    __slots__ = ("inode", "block", "kind", "prev", "next",
                 "heads", "tails", "free_head")

    def __init__(self, codes: int = 3) -> None:
        if codes < 2:
            raise ValueError(f"need at least one non-free store code, got {codes}")
        self.inode = array("q")
        self.block = array("q")
        self.kind = bytearray()
        self.prev = array("i")
        self.next = array("i")
        self.heads = array("i", [NIL] * codes)
        self.tails = array("i", [NIL] * codes)
        self.free_head = NIL

    def __len__(self) -> int:
        """Slab capacity in slots (free and live)."""
        return len(self.kind)

    # -- mutation ----------------------------------------------------------

    def alloc(self, inode: int, block: int, code: int) -> int:
        """Claim a slot for ``(inode, block)`` and queue it on ``code``'s
        FIFO tail; returns the handle."""
        handle = self.free_head
        if handle < 0:
            handle = len(self.kind)
            self.inode.append(inode)
            self.block.append(block)
            self.kind.append(code)
            self.prev.append(NIL)
            self.next.append(NIL)
        else:
            self.free_head = self.next[handle]
            self.inode[handle] = inode
            self.block[handle] = block
            self.kind[handle] = code
            self.next[handle] = NIL
        tail = self.tails[code]
        self.prev[handle] = tail
        if tail < 0:
            self.heads[code] = handle
        else:
            self.next[tail] = handle
        self.tails[code] = handle
        return handle

    def unlink(self, handle: int, code: int) -> None:
        """Detach ``handle`` from ``code``'s FIFO (it stays allocated)."""
        p = self.prev[handle]
        n = self.next[handle]
        if p < 0:
            self.heads[code] = n
        else:
            self.next[p] = n
        if n < 0:
            self.tails[code] = p
        else:
            self.prev[n] = p

    def free(self, handle: int) -> None:
        """Return an unlinked ``handle`` to the free-list."""
        self.kind[handle] = 0
        self.next[handle] = self.free_head
        self.free_head = handle

    def release(self, handle: int) -> int:
        """Unlink + free in one step; returns the store code it was on."""
        code = self.kind[handle]
        self.unlink(handle, code)
        self.free(handle)
        return code

    def requeue(self, handle: int, code: int) -> int:
        """Move ``handle`` to the tail of ``code``'s FIFO (store change or
        refresh); returns the previous code."""
        old = self.kind[handle]
        self.unlink(handle, old)
        self.kind[handle] = code
        tail = self.tails[code]
        self.prev[handle] = tail
        self.next[handle] = NIL
        if tail < 0:
            self.heads[code] = handle
        else:
            self.next[tail] = handle
        self.tails[code] = handle
        return old

    def pop_head(self, code: int) -> int:
        """Unlink and free the oldest entry of ``code``'s FIFO; returns
        its handle (still readable until the next alloc), or ``NIL``."""
        handle = self.heads[code]
        if handle < 0:
            return NIL
        n = self.next[handle]
        self.heads[code] = n
        if n < 0:
            self.tails[code] = NIL
        else:
            self.prev[n] = NIL
        self.free(handle)
        return handle

    def reset(self) -> None:
        """Drop everything (pool drain): empty slab, empty FIFOs."""
        del self.inode[:]
        del self.block[:]
        del self.kind[:]
        del self.prev[:]
        del self.next[:]
        for code in range(len(self.heads)):
            self.heads[code] = NIL
            self.tails[code] = NIL
        self.free_head = NIL

    # -- sweeps ------------------------------------------------------------

    def fifo_handles(self, code: int, limit: Optional[int] = None) -> Iterator[int]:
        """Handles on ``code``'s FIFO, oldest first.  ``limit`` bounds the
        walk (auditors pass the slab size to survive corrupted links)."""
        if limit is None:
            limit = len(self.kind)
        handle = self.heads[code]
        nxt = self.next
        while handle >= 0 and limit > 0:
            yield handle
            handle = nxt[handle]
            limit -= 1

    def fifo_keys(self, code: int) -> Iterator[Tuple[int, int]]:
        """``(inode, block)`` keys on ``code``'s FIFO, oldest first."""
        inode = self.inode
        block = self.block
        for handle in self.fifo_handles(code):
            yield (inode[handle], block[handle])

    def occupancy(self) -> List[int]:
        """Live slot count per store code (index = code), by sweeping the
        ``kind`` plane.  Vectorized via numpy when available; the pure
        Python fallback is byte-for-byte equivalent."""
        codes = len(self.heads)
        if _np is not None:
            counts = _np.bincount(
                _np.frombuffer(self.kind, dtype=_np.uint8), minlength=codes
            )
            return [int(c) for c in counts[:codes]]
        counts = [0] * codes
        for code in self.kind:
            counts[code] += 1
        return counts


_BITS = 6
_FANOUT = 1 << _BITS
_MASK = _FANOUT - 1


class _Node:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Any] = [None] * _FANOUT
        self.count = 0  # number of non-None slots


class RadixTree:
    """Maps non-negative integer keys (block offsets) to values."""

    __slots__ = ("_root", "_height", "_size")

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._height = 0  # number of levels; 0 means empty tree
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _required_height(key: int) -> int:
        # Equivalent to dividing the key's bit length into 6-bit digits;
        # bit_length() is a single C call vs. a Python shift loop.
        if key < _FANOUT:
            return 1
        return (key.bit_length() + _BITS - 1) // _BITS

    def _grow_to(self, height: int) -> None:
        if self._root is None:
            self._root = _Node()
            self._height = height
            return
        while self._height < height:
            node = _Node()
            node.slots[0] = self._root
            node.count = 1
            self._root = node
            self._height += 1

    # -- mapping operations ---------------------------------------------------

    def insert(self, key: int, value: Any) -> Any:
        """Set ``key`` to ``value``; returns the replaced value or ``None``.

        Returning the previous value lets callers fold the
        lookup-then-insert pair into a single tree descent.
        """
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        if value is None:
            raise ValueError("None values are reserved for empty slots")
        node = self._root
        if node is not None and self._height == 1 and key < _FANOUT:
            # Fast path: single-level tree (small files), no descent needed.
            previous = node.slots[key]
            if previous is None:
                node.count += 1
                self._size += 1
            node.slots[key] = value
            return previous
        self._grow_to(self._required_height(key))
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (level * _BITS)) & _MASK
            child = node.slots[idx]
            if child is None:
                child = _Node()
                node.slots[idx] = child
                node.count += 1
            node = child
        idx = key & _MASK
        previous = node.slots[idx]
        if previous is None:
            node.count += 1
            self._size += 1
        node.slots[idx] = value
        return previous

    def get(self, key: int, default: Any = None) -> Any:
        """Value at ``key``, or ``default`` if absent."""
        node = self._root
        if node is None or key < 0:
            return default
        height = self._height
        if height == 1:
            # Fast path: single-level tree (small files), no descent.
            if key >= _FANOUT:
                return default
            value = node.slots[key]
            return default if value is None else value
        if self._required_height(key) > height:
            return default
        for level in range(height - 1, 0, -1):
            node = node.slots[(key >> (level * _BITS)) & _MASK]
            if node is None:
                return default
        value = node.slots[key & _MASK]
        return default if value is None else value

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def remove(self, key: int) -> Any:
        """Delete ``key`` and return its value (``None`` if absent).

        Empty interior nodes are pruned so long-lived trees don't leak.
        """
        node = self._root
        if node is None or key < 0:
            return None
        if self._height == 1:
            # Fast path: single-level tree (small files) — no descent,
            # no path bookkeeping.
            if key >= _FANOUT:
                return None
            value = node.slots[key]
            if value is None:
                return None
            node.slots[key] = None
            node.count -= 1
            self._size -= 1
            if self._size == 0:
                self._root = None
                self._height = 0
            return value
        if self._required_height(key) > self._height:
            return None
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (level * _BITS)) & _MASK
            child = node.slots[idx]
            if child is None:
                return None
            path.append((node, idx))
            node = child
        idx = key & _MASK
        value = node.slots[idx]
        if value is None:
            return None
        node.slots[idx] = None
        node.count -= 1
        self._size -= 1
        # Prune now-empty nodes bottom-up.
        child = node
        for parent, pidx in reversed(path):
            if child.count:
                break
            parent.slots[pidx] = None
            parent.count -= 1
            child = parent
        if self._size == 0:
            self._root = None
            self._height = 0
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        if self._root is None:
            return
        stack: List[Tuple[_Node, int, int]] = [(self._root, self._height - 1, 0)]
        # Iterative DFS keeping the key prefix accumulated so far.
        while stack:
            node, level, prefix = stack.pop()
            if level == 0:
                for idx in range(_FANOUT):
                    value = node.slots[idx]
                    if value is not None:
                        yield (prefix | idx, value)
            else:
                # Push children in reverse so ascending order pops first.
                for idx in range(_FANOUT - 1, -1, -1):
                    child = node.slots[idx]
                    if child is not None:
                        stack.append(
                            (child, level - 1, prefix | (idx << (level * _BITS)))
                        )

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def clear(self) -> None:
        self._root = None
        self._height = 0
        self._size = 0
