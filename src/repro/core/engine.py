"""The DoubleDecker policy core, extracted behind a driver-agnostic seam.

:class:`PolicyEngine` owns every *decision* the paper's cache makes —
the VM/pool registry with its two-level weighted entitlements, the
Algorithm-1 victim selection (``repro.core.victim``), the hybrid
store-choice rule, and the resolution of per-pool SSD admission
controllers — while knowing nothing about storage backends or time:

* **Storage-agnostic.**  The engine tracks metadata (``Pool`` FIFOs and
  per-entity occupancy) only; the driver moves bytes and charges device
  costs.  ``capacities`` is a dict the driver owns and may mutate in
  place (lending, dynamic resize); the engine re-reads it on every
  :meth:`recompute`.
* **Clock-agnostic.**  Nothing in the engine reads a clock.  Admission
  controllers take ``now`` as an argument at their call sites, so the
  simulator passes ``Environment.now`` and a wall-clock service passes
  whatever monotonic time it lives on.

Two drivers exist: the discrete-event simulator's
:class:`~repro.core.cache_manager.DoubleDeckerCache` (which this class
was factored out of — the simulated data path is byte-identical to the
pre-extraction code, pinned by ``tests/test_policy_engine.py``) and the
wall-clock cache service :mod:`repro.service`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .config import CachePolicy, StoreKind
from .policy import recompute_entitlements
from .pools import Pool, VMEntry
from .victim import EvictionEntity, fallback_victim, get_victim

__all__ = ["PolicyEngine", "EvictionRound"]

#: Builds an admission controller for a pool's policy (or ``None`` to
#: admit freely).  Resolution of defaults (config / process-wide) is the
#: driver's business, hence a callable rather than data.
AdmissionBuilder = Callable[[CachePolicy], Optional[object]]

#: Resolves the admission-policy *name* a policy would get, so a policy
#: change can preserve a live controller (its ghost/bucket state) when
#: the resolved name is unchanged.
AdmissionNamer = Callable[[CachePolicy], str]


@dataclass
class EvictionRound:
    """One Algorithm-1 selection with full decision provenance.

    The candidate lists are exposed (not just the winners) so drivers
    can re-derive each entity's exceed value for decision tracing
    without re-running — or perturbing — the selection.
    """

    vm_entities: List[EvictionEntity]
    victim_vm: VMEntry
    pool_entities: List[EvictionEntity]
    victim_pool: Pool


class PolicyEngine:
    """Registry + decision logic of the two-level weighted cache."""

    def __init__(
        self,
        capacities: Dict[StoreKind, int],
        victim_policy: str = "exceed",
        admission_builder: Optional[AdmissionBuilder] = None,
        admission_namer: Optional[AdmissionNamer] = None,
    ) -> None:
        if victim_policy not in ("exceed", "max_used"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        #: Effective store sizes in blocks; owned and mutated by the driver.
        self.capacities = capacities
        self.victim_policy = victim_policy
        self._admission_builder = admission_builder
        self._admission_namer = admission_namer
        self.vms: Dict[int, VMEntry] = {}
        #: Flat global pool-id -> Pool map (pool ids are host-unique).
        self.pools: Dict[int, Pool] = {}
        self._next_vm_id = 1
        self._next_pool_id = 1
        self.vm_entitlements: Dict[Tuple[int, StoreKind], int] = {}

    # ------------------------------------------------------------------
    # VM lifecycle (hypervisor-level policy controller)
    # ------------------------------------------------------------------

    def register_vm(self, name: str, weight: float = 100.0) -> int:
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        self.vms[vm_id] = VMEntry(vm_id, name, weight)
        self.recompute()
        return vm_id

    def unregister_vm(self, vm_id: int) -> VMEntry:
        """Drop a VM from the registry (caller destroys its pools first)."""
        vm = self.require_vm(vm_id)
        if vm.pools:
            raise ValueError(
                f"VM {vm_id} still owns pools {sorted(vm.pools)} — destroy "
                f"them (draining their blocks) before unregistering"
            )
        del self.vms[vm_id]
        self.recompute()
        return vm

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.require_vm(vm_id).weight = weight
        self.recompute()

    # ------------------------------------------------------------------
    # Pool lifecycle (guest-level policy controller)
    # ------------------------------------------------------------------

    def create_pool(self, vm_id: int, name: str, policy: CachePolicy) -> Pool:
        vm = self.require_vm(vm_id)
        pool_id = self._next_pool_id
        self._next_pool_id += 1
        pool = Pool(pool_id, vm_id, name, policy)
        if self._admission_builder is not None:
            pool.admission = self._admission_builder(policy)
        vm.pools[pool_id] = pool
        self.pools[pool_id] = pool
        self.recompute()
        return pool

    def destroy_pool(self, vm_id: int, pool_id: int) -> Pool:
        """Retire a pool from the registry (caller drains its blocks)."""
        pool = self.require_pool(vm_id, pool_id)
        pool.active = False
        del self.vms[vm_id].pools[pool_id]
        del self.pools[pool_id]
        self.recompute()
        return pool

    def set_pool_policy(
        self, vm_id: int, pool_id: int, policy: CachePolicy
    ) -> str:
        """Change a pool's ``<T, W>`` tuple; returns the resolved admission
        name.

        The same resolved admission policy keeps the live controller (its
        ghost/bucket state and ledger survive a weight change); a policy
        switch builds a fresh one.
        """
        pool = self.require_pool(vm_id, pool_id)
        namer = self._admission_namer
        old_name = namer(pool.policy) if namer is not None else ""
        new_name = namer(policy) if namer is not None else ""
        pool.policy = policy
        if new_name != old_name and self._admission_builder is not None:
            pool.admission = self._admission_builder(policy)
        self.recompute()
        return new_name

    # ------------------------------------------------------------------
    # Entitlements
    # ------------------------------------------------------------------

    def recompute(self) -> None:
        """Re-derive every entitlement from weights and capacities."""
        self.vm_entitlements = recompute_entitlements(self.vms, self.capacities)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def choose_store(self, pool: Pool) -> Optional[StoreKind]:
        """Where a new put for ``pool`` should land (hybrid spills to SSD)."""
        policy = pool.policy
        if policy.is_hybrid:
            if pool.used[StoreKind.MEMORY] < pool.entitlement[StoreKind.MEMORY]:
                return StoreKind.MEMORY
            return StoreKind.SSD
        if policy.mem_weight > 0:
            return StoreKind.MEMORY
        if policy.ssd_weight > 0:
            return StoreKind.SSD
        return None

    def select_victim(
        self, entities: List[EvictionEntity], batch: int
    ) -> Optional[EvictionEntity]:
        """Apply the configured victim policy (Algorithm 1 by default)."""
        if not entities:
            return None
        if self.victim_policy == "max_used":
            return fallback_victim(entities)
        victim = get_victim(entities, batch)
        if victim is None:
            victim = fallback_victim(entities)
        return victim

    def vm_candidates(self, kind: StoreKind) -> List[EvictionEntity]:
        """VM-level eviction candidates for store ``kind``.

        Enumerated by *occupancy*, not policy weight: blocks legitimately
        left in a store the policy no longer weights (a ``set_policy``
        store switch, or a trickle-down into a memory-only pool) must
        stay reclaimable, or a full store wedges with no visible victim.
        Such entities keep entitlement 0 and get weightage 0, so
        Algorithm 1 treats them as pure over-users.
        """
        entities: List[EvictionEntity] = []
        for vm in self.vms.values():
            weighted = bool(vm.pools_on(kind))
            used = vm.used(kind)
            if not weighted and used == 0:
                continue
            entities.append(EvictionEntity(
                ref=vm,
                entitlement=self.vm_entitlements.get((vm.vm_id, kind), 0),
                used=used,
                weightage=vm.weight if weighted else 0.0,
            ))
        return entities

    def pool_candidates(self, vm: VMEntry, kind: StoreKind) -> List[EvictionEntity]:
        """Pool-level eviction candidates within ``vm`` (same occupancy rule)."""
        entities: List[EvictionEntity] = []
        for pool in vm.pools.values():
            weight = pool.policy.weight_for(kind)
            if weight <= 0 and pool.used[kind] == 0:
                continue
            entities.append(EvictionEntity(
                ref=pool,
                entitlement=pool.entitlement[kind],
                used=pool.used[kind],
                weightage=weight,
            ))
        return entities

    def select_eviction(self, kind: StoreKind, batch: int) -> Optional[EvictionRound]:
        """One Algorithm-1 selection: victim VM, then victim pool within it.

        Returns ``None`` when no entity holds anything evictable.  The
        driver evicts up to ``batch`` blocks FIFO from the winning pool
        and owns all accounting for them.
        """
        vm_entities = self.vm_candidates(kind)
        victim_vm = self.select_victim(vm_entities, batch)
        if victim_vm is None:
            return None
        vm: VMEntry = victim_vm.ref
        pool_entities = self.pool_candidates(vm, kind)
        victim_pool = self.select_victim(pool_entities, batch)
        if victim_pool is None:
            return None
        return EvictionRound(
            vm_entities=vm_entities,
            victim_vm=vm,
            pool_entities=pool_entities,
            victim_pool=victim_pool.ref,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def require_vm(self, vm_id: int) -> VMEntry:
        vm = self.vms.get(vm_id)
        if vm is None:
            raise KeyError(f"unknown vm_id {vm_id}")
        return vm

    def require_pool(self, vm_id: int, pool_id: int) -> Pool:
        vm = self.require_vm(vm_id)
        pool = vm.pools.get(pool_id)
        if pool is None:
            raise KeyError(f"unknown pool_id {pool_id} in VM {vm_id}")
        return pool
