"""Storage backends for the hypervisor cache.

The *metadata* of cached blocks lives in pools; backends model the cost of
moving block *data*:

* :class:`MemBackend` — pure latency arithmetic (memcpy costs).
* :class:`SSDBackend` — a queued :class:`~repro.storage.device.SSD` with
  synchronous reads (the guest waits for a ``get``) and asynchronous,
  bounded-buffer writes (``put`` returns once the block is queued; if the
  buffer is full the put is rejected — cleancache puts are best-effort).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..simkernel import Environment, Event
from ..storage import MB, MemSpec, SSD
from .config import StoreKind
from .pools import BlockKey

__all__ = ["MemBackend", "SSDBackend", "contiguous_runs"]


def contiguous_runs(keys: Sequence[BlockKey]) -> List[Tuple[int, int]]:
    """Merge sorted block keys into ``(start_block, length)`` runs.

    Runs never span files; used to turn per-block SSD hits into realistic
    multi-block device requests.
    """
    runs: List[Tuple[int, int]] = []
    ordered = sorted(keys)
    run_start: Optional[Tuple[int, int]] = None
    run_len = 0
    for inode, block in ordered:
        if (
            run_start is not None
            and inode == run_start[0]
            and block == run_start[1] + run_len
        ):
            run_len += 1
        else:
            if run_start is not None:
                runs.append((run_start[1], run_len))
            run_start = (inode, block)
            run_len = 1
    if run_start is not None:
        runs.append((run_start[1], run_len))
    return runs


class MemBackend:
    """Memory store: costs are memcpy times, no queueing."""

    kind = StoreKind.MEMORY

    def __init__(self, block_bytes: int, spec: Optional[MemSpec] = None) -> None:
        self.block_bytes = block_bytes
        self.spec = spec or MemSpec()

    def read_cost(self, nblocks: int) -> float:
        """Seconds to copy ``nblocks`` out of the store."""
        if nblocks <= 0:
            return 0.0
        return nblocks * self.spec.copy_time(self.block_bytes)

    def write_cost(self, nblocks: int) -> float:
        """Seconds to copy ``nblocks`` into the store."""
        if nblocks <= 0:
            return 0.0
        return nblocks * self.spec.copy_time(self.block_bytes)


class SSDBackend:
    """SSD store: sync reads through the device, async buffered writes."""

    kind = StoreKind.SSD

    def __init__(
        self,
        env: Environment,
        device: SSD,
        write_buffer_mb: float = 64.0,
    ) -> None:
        self.env = env
        self.device = device
        self.block_bytes = device.block_bytes
        buffer_bytes = max(self.block_bytes, int(write_buffer_mb * MB))
        self._buffer_capacity_blocks = buffer_bytes // self.block_bytes
        self._pending: Deque[int] = deque()
        self._pending_blocks = 0
        self._wakeup: Optional[Event] = None
        self._writer = env.process(self._drain(), name="ssd-store-writer")
        #: cumulative counters
        self.writes_enqueued = 0
        self.writes_rejected = 0
        #: blocks whose device write has completed (drained from buffer);
        #: ``writes_enqueued == blocks_written + pending_blocks`` at every
        #: event boundary (the auditor checks this).
        self.blocks_written = 0

    # -- reads ------------------------------------------------------------------

    def read_runs(self, runs: Sequence[Tuple[int, int]]):
        """Read each ``(start_block, length)`` run; yields until all done."""
        for start, length in runs:
            yield from self.device.read(start, length)

    # -- async writes -------------------------------------------------------------

    @property
    def pending_blocks(self) -> int:
        """Blocks sitting in the write buffer, not yet on flash."""
        return self._pending_blocks

    def enqueue_write(self, nblocks: int) -> bool:
        """Queue ``nblocks`` for background writing; False if buffer full."""
        if nblocks <= 0:
            return True
        if self._pending_blocks + nblocks > self._buffer_capacity_blocks:
            self.writes_rejected += nblocks
            return False
        self._pending.append(nblocks)
        self._pending_blocks += nblocks
        self.writes_enqueued += nblocks
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return True

    def _drain(self):
        while True:
            if not self._pending:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            # Coalesce queued writes into one device request (up to 2 MB),
            # mimicking a write-back thread batching dirty cache fills.
            batch = 0
            limit = max(1, (2 * MB) // self.block_bytes)
            while self._pending and batch < limit:
                batch += self._pending.popleft()
            yield from self.device.write(0, batch)
            self._pending_blocks -= batch
            self.blocks_written += batch
