"""repro — a simulation-based reproduction of *DoubleDecker: a cooperative
disk caching framework for derivative clouds* (Middleware '17).

The package builds the complete platform the paper runs on — guest page
caches with cleancache hooks, cgroup memory control, queueing HDD/SSD
models, VM/container nesting — plus the DoubleDecker hypervisor cache
itself and the baselines it is evaluated against.

Quick start::

    from repro import SimContext, DDConfig, CachePolicy
    from repro.workloads import WebserverWorkload

    ctx = SimContext(seed=42)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=2048))
    vm = host.create_vm("vm1", memory_mb=4096)
    web = vm.create_container("web", 1024, CachePolicy.memory(60))
    workload = WebserverWorkload(nfiles=2000)
    workload.start(web, ctx.streams)
    ctx.run(until=600)
    print(workload.counters.ops, "ops")
"""

from . import analysis
from .context import SimContext
from .core import (
    CachePolicy,
    DDConfig,
    DoubleDeckerCache,
    GlobalCache,
    NullCache,
    StaticPartitionCache,
    StoreKind,
)
from .fleet import Fleet, NetworkModel
from .hypervisor import Host, HostSpec
from .guest import Container, VirtualMachine
from .storage import HDDSpec, MemSpec, SSDSpec

__version__ = "1.0.0"

__all__ = [
    "CachePolicy",
    "Container",
    "DDConfig",
    "DoubleDeckerCache",
    "Fleet",
    "GlobalCache",
    "HDDSpec",
    "Host",
    "HostSpec",
    "MemSpec",
    "NetworkModel",
    "NullCache",
    "SSDSpec",
    "SimContext",
    "StaticPartitionCache",
    "StoreKind",
    "VirtualMachine",
    "__version__",
    "analysis",
]
