"""Remote-memory lending: the fleet's global capacity coordinator.

A host whose DoubleDecker memory store runs well under its watermark has
*slack*; a host evicting under pressure wants more than it owns.  The
coordinator periodically re-derives **lend grants**: slack hosts export
part of their owned capacity (``lend_out``), pressured hosts admit the
borrowed capacity into their effective store size (``lend_in``).  Grants
are absolute block counts applied idempotently through
:meth:`~repro.core.cache_manager.DoubleDeckerCache.set_lending`, which
maintains the audited invariant ``capacity == base + lend_in - lend_out``
per cache; the coordinator maintains the fleet-wide one —
``sum(lend_out) == sum(lend_in)`` — by construction (it only distributes
whole blocks it collected).

Latency modeling is deliberately coarse: borrowed blocks live in the
borrower's store and hit at local cost (the MODELING.md fleet section
records this approximation).  What the model *does* capture is the
capacity dynamics: a re-derivation that shrinks a grant evicts through
the normal resource-conservative path on whichever host lost capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core import DoubleDeckerCache, StoreKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fleet import Fleet

__all__ = ["LendingCoordinator"]

_MEMORY = StoreKind.MEMORY


class LendingCoordinator:
    """Periodic re-derivation of memory lend grants across a fleet."""

    def __init__(
        self,
        fleet: "Fleet",
        interval_s: float = 60.0,
        low_util: float = 0.5,
        high_util: float = 0.9,
        lend_fraction: float = 0.5,
    ) -> None:
        if interval_s < fleet.net.latency_s:
            raise ValueError(
                f"rebalance interval {interval_s} below the network "
                f"latency floor {fleet.net.latency_s}"
            )
        if not 0.0 < low_util < high_util <= 1.0:
            raise ValueError(
                f"need 0 < low_util < high_util <= 1, got "
                f"{low_util}/{high_util}"
            )
        if not 0.0 < lend_fraction <= 1.0:
            raise ValueError(
                f"lend_fraction must be in (0, 1], got {lend_fraction}"
            )
        self.fleet = fleet
        self.interval_s = interval_s
        self.low_util = low_util
        self.high_util = high_util
        self.lend_fraction = lend_fraction
        self.rebalances = 0
        #: One entry per rebalance that changed at least one grant:
        #: ``(time, {host index: signed blocks (+borrowed, -lent)})``.
        self.history: List[Tuple[float, Dict[int, int]]] = []

    # -- scheduling -----------------------------------------------------

    def start(self) -> None:
        """Schedule the first re-derivation one interval from now."""
        self.fleet._at(self.fleet.now + self.interval_s, self._tick)

    def _tick(self, now: float) -> None:
        self.rebalance(now)
        self.fleet._at(now + self.interval_s, self._tick)

    # -- the re-derivation ----------------------------------------------

    def _caches(self) -> List[Tuple[int, DoubleDeckerCache]]:
        return [
            (node.index, node.host.hvcache)
            for node in self.fleet.nodes
            if isinstance(node.host.hvcache, DoubleDeckerCache)
        ]

    def rebalance(self, now: float) -> None:
        """Re-derive all grants from current occupancy (idempotent)."""
        self.rebalances += 1
        lenders: List[Tuple[int, DoubleDeckerCache, int]] = []
        borrowers: List[Tuple[int, DoubleDeckerCache]] = []
        neutral: List[Tuple[int, DoubleDeckerCache]] = []
        for index, cache in self._caches():
            base = cache._base_capacity[_MEMORY]
            if base <= 0:
                neutral.append((index, cache))
                continue
            util = cache.used[_MEMORY] / base
            if util < self.low_util:
                # Slack up to the low watermark, damped so a lender keeps
                # headroom for its own growth.
                slack = int(base * self.low_util) - cache.used[_MEMORY]
                lendable = int(slack * self.lend_fraction)
                if lendable > 0:
                    lenders.append((index, cache, lendable))
                else:
                    neutral.append((index, cache))
            elif util > self.high_util:
                borrowers.append((index, cache))
            else:
                neutral.append((index, cache))

        supply = sum(lendable for _, _, lendable in lenders)
        grants: Dict[int, int] = {}
        if borrowers and supply > 0:
            # Equal split, remainder dropped: whole blocks only, and the
            # outs below consume exactly what the ins receive.
            per_borrower = supply // len(borrowers)
            remaining = per_borrower * len(borrowers)
            for index, cache, lendable in lenders:
                out = min(lendable, remaining)
                remaining -= out
                cache.set_lending(_MEMORY, lend_out=out)
                if out:
                    grants[index] = -out
            for index, cache in borrowers:
                cache.set_lending(_MEMORY, lend_in=per_borrower)
                if per_borrower:
                    grants[index] = per_borrower
        else:
            # No market this round: every grant collapses to zero.
            for index, cache, _ in lenders:
                cache.set_lending(_MEMORY)
            for index, cache in borrowers:
                cache.set_lending(_MEMORY)
        for index, cache in neutral:
            cache.set_lending(_MEMORY)
        if grants:
            self.history.append((now, grants))
