"""Fleet topology: multi-host cooperative caching for derivative clouds.

Public surface:

* :class:`Fleet` / :class:`FleetNode` — N hosts, one sharded simulation
  advanced under conservative lookahead.
* :class:`NetworkModel` — the inter-host latency/bandwidth floor (also
  the sharding lookahead).
* :class:`LendingCoordinator` — periodic re-derivation of remote-memory
  lend grants.
* :class:`MigrationRecord` — per-migration accept/reject accounting.
* :func:`check_fleet` / :func:`assert_fleet_clean` — fleet-wide
  invariants (per-host audit + lending conservation).
"""

from .fleet import (
    Fleet,
    FleetNode,
    MigrationRecord,
    assert_fleet_clean,
    check_fleet,
)
from .lending import LendingCoordinator
from .network import NetworkModel

__all__ = [
    "Fleet",
    "FleetNode",
    "LendingCoordinator",
    "MigrationRecord",
    "NetworkModel",
    "assert_fleet_clean",
    "check_fleet",
]
