"""The inter-host network model: a latency floor plus a bandwidth cap.

Hosts of a fleet are coupled only through this model.  Its latency floor
is the *lookahead* of the sharded simulation: no action issued on one
host can be observed on another sooner than ``latency_s`` later, so the
fleet may advance every host's environment to a common boundary before
applying any cross-host effect (see :mod:`repro.simkernel.lookahead`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage import MB

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Flat inter-host fabric (defaults model a 10 GbE datacenter pod)."""

    #: One-way latency floor between any two hosts (seconds).  Also the
    #: minimum sync window of the sharded simulation.
    latency_s: float = 0.0005
    #: Per-transfer payload bandwidth (MB/s).
    bandwidth_mb_s: float = 1180.0

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError(f"latency must be positive, got {self.latency_s}")
        if self.bandwidth_mb_s <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_mb_s}"
            )

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` host-to-host (latency + serialization)."""
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_mb_s * MB)
