"""Multi-host topology: N hosts, one sharded simulation, cooperation.

A :class:`Fleet` owns N :class:`~repro.hypervisor.host.Host`\\ s, each
with its *own* :class:`~repro.simkernel.core.Environment`, RNG streams,
and metrics registry — one simulation shard per host.  Hosts interact
only through the fleet's control plane (VM live-migration and
remote-memory lending), and every cross-host effect is delayed by at
least the :class:`~repro.fleet.network.NetworkModel` latency floor, so
the shards advance under conservative lookahead
(:class:`~repro.simkernel.lookahead.LookaheadGroup`): all hosts reach a
sync boundary, the control plane acts, and the next window begins.
Boundaries are derived from the scheduled control events themselves —
between two control events no host can observe another, which makes the
window *at least* the latency floor and usually much larger.

Determinism: node 0 consumes the master seed exactly as a single-host
:class:`~repro.context.SimContext` does, so a 1-host fleet reproduces
the single-host path byte-for-byte; nodes ``i > 0`` draw from spawned
sub-factories.  With ``jobs > 1`` the shard advancement fans out over
threads — safe because shards share no mutable state — except while a
process-global tracer is installed, in which case the fleet falls back
to serial advancement (the tracer's ring buffer is shared state).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from ..core import DDConfig, DoubleDeckerCache, StoreKind, check_host
from ..core.audit import InvariantViolation
from ..core.config import CachePolicy
from ..guest import VirtualMachine
from ..hypervisor import Host, HostSpec
from ..metrics import MetricFamily, MetricsRegistry, registry_families, render_families
from ..obs import tracer as _obs
from ..simkernel import Environment, LookaheadGroup, RandomStreams
from ..storage import MB
from .lending import LendingCoordinator
from .network import NetworkModel

__all__ = ["Fleet", "FleetNode", "MigrationRecord", "check_fleet",
           "assert_fleet_clean"]

_MEMORY = StoreKind.MEMORY


@dataclass
class FleetNode:
    """One shard: a host plus its private simulation runtime."""

    index: int
    env: Environment
    streams: RandomStreams
    registry: MetricsRegistry
    host: Host
    #: Histogram-name prefix (``"host2."``); empty in a 1-host fleet so
    #: metric names match the single-host path exactly.
    scope: str


@dataclass
class MigrationRecord:
    """Accounting for one cross-host VM live-migration."""

    vm: str
    src_host: int
    dst_host: int
    requested_at: float
    arrived_at: float
    blocks_exported: int
    blocks_accepted: int
    blocks_rejected: int
    bytes_moved: float

    @property
    def downtime_s(self) -> float:
        return self.arrived_at - self.requested_at


class Fleet:
    """N cooperating hosts advanced as one sharded simulation."""

    def __init__(
        self,
        seed: int = 0,
        hosts: int = 1,
        spec: Optional[HostSpec] = None,
        net: Optional[NetworkModel] = None,
        jobs: int = 1,
    ) -> None:
        if hosts < 1:
            raise ValueError(f"need at least one host, got {hosts}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.seed = seed
        self.net = net or NetworkModel()
        self.jobs = jobs
        self.nodes: List[FleetNode] = []
        base = RandomStreams(seed)
        for index in range(hosts):
            env = Environment()
            # Node 0 IS the single-host context (same master seed, same
            # stream names), which is what makes a 1-host fleet replay
            # the single-host path byte-for-byte.
            streams = base if index == 0 else base.spawn(f"host{index}")
            registry = MetricsRegistry()
            host = Host(env, spec=spec, streams=streams, registry=registry)
            scope = f"host{index}." if hosts > 1 else ""
            self.nodes.append(
                FleetNode(index, env, streams, registry, host, scope)
            )
        self._group = LookaheadGroup([node.env for node in self.nodes],
                                     jobs=jobs)
        self._now = 0.0
        #: Pending control-plane actions: (time, seq, callback(now)).
        self._controls: List[Tuple[float, int, Callable[[float], None]]] = []
        self._control_seq = count()
        self.migrations: List[MigrationRecord] = []
        self.lending: Optional[LendingCoordinator] = None

    # -- construction ---------------------------------------------------

    def install_doubledecker(self, config: DDConfig) -> List[DoubleDeckerCache]:
        """Install one DD instance per host; returns them in host order."""
        caches = []
        for node in self.nodes:
            name = f"{node.scope}ddecker" if node.scope else "ddecker"
            caches.append(node.host.install_doubledecker(config, name=name))
        return caches

    def create_vm(self, host_index: int, name: str, memory_mb: float,
                  **kwargs) -> VirtualMachine:
        """Boot a VM on one host (host-scoped observability attached)."""
        node = self.nodes[host_index]
        vm = node.host.create_vm(name, memory_mb, **kwargs)
        vm.cleancache.obs_scope = node.scope
        return vm

    def enable_lending(self, **kwargs) -> LendingCoordinator:
        """Turn the remote-memory lending coordinator on."""
        if self.lending is not None:
            raise RuntimeError("lending coordinator already enabled")
        self.lending = LendingCoordinator(self, **kwargs)
        self.lending.start()
        return self.lending

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def _at(self, when: float, fn: Callable[[float], None]) -> None:
        """Schedule a control-plane action at fleet time ``when``."""
        if when < self._now:
            raise ValueError(
                f"control action at {when} is in the past (now {self._now})"
            )
        heapq.heappush(self._controls, (when, next(self._control_seq), fn))

    def run(self, until: float) -> None:
        """Advance every shard to ``until`` under conservative lookahead.

        Each iteration picks the next sync boundary (the earliest pending
        control action, else ``until``), barriers all shards there, then
        runs the due control actions.  Control actions only ever schedule
        effects at least one network latency in the future, so no shard
        can have passed an effect's time when it is applied.
        """
        until = float(until)
        while True:
            boundary = until
            if self._controls and self._controls[0][0] < boundary:
                boundary = self._controls[0][0]
            if boundary > self._now:
                # A process-global tracer is shared mutable state across
                # shards; advancing serially keeps its records exact.
                jobs = 1 if _obs.ACTIVE is not None else self.jobs
                self._group.advance(boundary, jobs=jobs)
                self._now = boundary
            while self._controls and self._controls[0][0] <= self._now:
                _, _, fn = heapq.heappop(self._controls)
                fn(self._now)
            if self._now >= until:
                break

    def close(self) -> None:
        """Release worker threads (safe to call repeatedly)."""
        self._group.close()

    # -- observability export -------------------------------------------

    def metrics_families(self) -> List[MetricFamily]:
        """Every shard's registry as metric families, one ``host`` label
        per node — same-name families across hosts merge at render time,
        so a counter becomes one family with N labelled samples."""
        families: List[MetricFamily] = []
        for node in self.nodes:
            families.extend(registry_families(
                node.registry, labels={"host": f"host{node.index}"}))
        return families

    def export_metrics_text(self) -> str:
        """The whole fleet in Prometheus text exposition format (the
        same renderer the live service's ``/metrics`` endpoint uses)."""
        return render_families(self.metrics_families())

    # -- VM live-migration ----------------------------------------------

    def migrate_vm(
        self,
        name: str,
        src_host: int,
        dst_host: int,
        at: Optional[float] = None,
        on_depart: Optional[Callable[[VirtualMachine, FleetNode], None]] = None,
        on_arrival: Optional[Callable[[VirtualMachine, FleetNode], None]] = None,
    ) -> None:
        """Schedule a live migration of VM ``name`` between hosts.

        At ``at`` (default: now) the VM leaves the source: its cached
        blocks are exported through the fleet-level ``migrate_objects``
        analogue (every block counted ``migrated_out``), the VM is torn
        down, and its guest RAM plus memory-store blocks go on the wire.
        One network transfer later the VM boots on the destination with
        identical containers/policies and the destination cache adopts
        the exported blocks with per-block accept/reject accounting.
        ``on_depart`` runs just before teardown (stop workloads there);
        ``on_arrival`` runs on the rebuilt VM (restart them).
        """
        if src_host == dst_host:
            raise ValueError("source and destination host are the same")
        src_node = self.nodes[src_host]
        dst_node = self.nodes[dst_host]
        when = self._now if at is None else at

        def depart(now: float) -> None:
            self._depart(now, name, src_node, dst_node, on_depart, on_arrival)

        self._at(when, depart)

    def _depart(self, now, name, src_node, dst_node, on_depart, on_arrival):
        src = src_node.host
        vm = src.vms[name]
        if on_depart is not None:
            on_depart(vm, src_node)
        hv = src.hvcache
        exported: List[Tuple[str, CachePolicy, list]] = []
        if isinstance(hv, DoubleDeckerCache):
            exported = hv.export_vm_blocks(vm.vm_id)
        entry = getattr(hv, "vms", {}).get(vm.vm_id)
        weight = entry.weight if entry is not None else 100.0
        containers = [
            (c.name,
             c.cgroup.limit_blocks * src.block_bytes / MB,
             c.cgroup.policy)
            for c in vm.containers.values()
        ]
        exported_blocks = sum(len(items) for _, _, items in exported)
        mem_blocks = sum(
            1 for _, _, items in exported
            for _, _, kind in items if kind is _MEMORY
        )
        # What actually ships: the guest's RAM image plus the memory
        # store (the local SSD store stays behind — see adopt_blocks).
        nbytes = vm.memory_mb * MB + mem_blocks * src.block_bytes
        memory_mb, vcpus = vm.memory_mb, vm.vcpus
        src.destroy_vm(vm)

        def arrive(t_arrive: float) -> None:
            new_vm = self.create_vm(dst_node.index, name, memory_mb,
                                    vcpus=vcpus, cache_weight=weight)
            items_by_pool = {pname: items for pname, _, items in exported}
            accepted = rejected = 0
            dst_cache = dst_node.host.hvcache
            for cname, limit_mb, policy in containers:
                container = new_vm.create_container(cname, limit_mb, policy)
                items = items_by_pool.get(cname)
                if (items and container.pool_id is not None
                        and isinstance(dst_cache, DoubleDeckerCache)):
                    got, lost = dst_cache.adopt_blocks(
                        new_vm.vm_id, container.pool_id, items
                    )
                    accepted += got
                    rejected += lost
            # Blocks whose pool the new VM did not recreate count as
            # rejected too: they were exported but nothing adopted them.
            rejected += exported_blocks - accepted - rejected
            self.migrations.append(MigrationRecord(
                vm=name, src_host=src_node.index, dst_host=dst_node.index,
                requested_at=now, arrived_at=t_arrive,
                blocks_exported=exported_blocks, blocks_accepted=accepted,
                blocks_rejected=rejected, bytes_moved=nbytes,
            ))
            if on_arrival is not None:
                on_arrival(new_vm, dst_node)

        self._at(now + self.net.transfer_time(nbytes), arrive)


# ---------------------------------------------------------------------------
# Fleet-wide invariants
# ---------------------------------------------------------------------------


def check_fleet(fleet: Fleet) -> List[str]:
    """Every host's invariants plus fleet-global lending conservation."""
    violations: List[str] = []
    for node in fleet.nodes:
        violations.extend(
            f"host {node.index}: {violation}"
            for violation in check_host(node.host)
        )
    totals: Dict[StoreKind, Tuple[int, int]] = {}
    for node in fleet.nodes:
        cache = node.host.hvcache
        if not isinstance(cache, DoubleDeckerCache):
            continue
        for kind in (StoreKind.MEMORY, StoreKind.SSD):
            lent, borrowed = totals.get(kind, (0, 0))
            totals[kind] = (
                lent + cache.lend_out[kind],
                borrowed + cache.lend_in[kind],
            )
    for kind, (lent, borrowed) in totals.items():
        if lent != borrowed:
            violations.append(
                f"lending not conserved for {kind}: {lent} blocks lent out "
                f"but {borrowed} borrowed"
            )
    return violations


def assert_fleet_clean(fleet: Fleet, where: str = "") -> None:
    """Raise :class:`InvariantViolation` on any fleet-wide violation."""
    violations = check_fleet(fleet)
    if violations:
        prefix = f"{where}: " if where else ""
        raise InvariantViolation(
            prefix + "; ".join(violations)
        )
