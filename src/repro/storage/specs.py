"""Device performance specifications.

Each spec converts a request (size, locality) into a *service time* in
seconds.  The latency ladder mirrors the paper's testbed: DRAM copies in
the microsecond range, a SATA SSD around a hundred microseconds per 4K
with bandwidth limits, and a spinning disk with millisecond seeks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemSpec", "SSDSpec", "HDDSpec", "MB", "KB"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class MemSpec:
    """DRAM copy costs (used for memory-backed cache stores and page hits).

    ``touch_latency_us`` is the fixed per-operation cost (pointer chasing,
    locking); ``bandwidth_mbps`` bounds bulk copies.
    """

    touch_latency_us: float = 0.5
    bandwidth_mbps: float = 8000.0

    def copy_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` of memory."""
        return self.touch_latency_us * 1e-6 + nbytes / (self.bandwidth_mbps * MB)


@dataclass(frozen=True)
class SSDSpec:
    """A SATA-class SSD: asymmetric read/write costs, internal parallelism.

    Defaults approximate the paper's Kingston V300 (SATA 3): ~450 MB/s
    sequential read, ~300 MB/s write, ~90 us random-read latency.

    The endurance fields feed :class:`repro.endurance.WearModel`:
    ``capacity_gb`` x ``pe_cycles`` bounds total flash programs (the V300
    is TLC-class, ~3000 cycles), ``erase_block_kb`` sets the P/E
    granularity, and ``waf`` is the write-amplification calibration knob
    (1.0 = no garbage-collection overhead).
    """

    read_latency_us: float = 90.0
    write_latency_us: float = 70.0
    read_bandwidth_mbps: float = 450.0
    write_bandwidth_mbps: float = 300.0
    channels: int = 4
    capacity_gb: float = 240.0
    pe_cycles: int = 3000
    erase_block_kb: float = 2048.0
    waf: float = 1.0

    def read_time(self, nbytes: int) -> float:
        """Seconds to service one read of ``nbytes``."""
        return self.read_latency_us * 1e-6 + nbytes / (self.read_bandwidth_mbps * MB)

    def write_time(self, nbytes: int) -> float:
        """Seconds to service one write of ``nbytes``."""
        return self.write_latency_us * 1e-6 + nbytes / (self.write_bandwidth_mbps * MB)


@dataclass(frozen=True)
class HDDSpec:
    """A single-spindle SATA disk with seek + rotation + transfer.

    Sequential requests (next block follows the previous request) skip the
    positioning cost, which is what makes streaming workloads (videoserver)
    disk-friendly and random ones (mail) disk-bound.
    """

    avg_seek_ms: float = 4.0
    rpm: float = 10000.0
    transfer_mbps: float = 200.0

    @property
    def avg_rotation_s(self) -> float:
        """Average rotational delay (half a revolution)."""
        return 0.5 * 60.0 / self.rpm

    def access_time(self, nbytes: int, sequential: bool, seek_factor: float = 1.0) -> float:
        """Seconds to service one request.

        ``seek_factor`` lets callers inject bounded randomness around the
        average positioning cost (1.0 means exactly average).
        """
        transfer = nbytes / (self.transfer_mbps * MB)
        if sequential:
            return transfer
        positioning = (self.avg_seek_ms * 1e-3 + self.avg_rotation_s) * seek_factor
        return positioning + transfer
