"""Queueing block devices built on the simulation kernel.

A :class:`BlockDevice` owns a :class:`~repro.simkernel.resources.Resource`
whose capacity models internal parallelism (1 for a spindle, N channels for
an SSD).  All IO goes through generator methods so callers experience real
queueing delay under contention.

Addresses are *block numbers*; the device is told its block size once so
callers never deal with bytes.
"""

from __future__ import annotations

import random
from typing import Optional

from ..endurance.wear import WearModel
from ..obs import tracer as _obs
from ..simkernel import Environment, Resource
from .specs import HDDSpec, SSDSpec

__all__ = ["BlockDevice", "HDD", "SSD", "DeviceStats"]


class DeviceStats:
    """Cumulative IO counters for one device."""

    __slots__ = ("reads", "writes", "blocks_read", "blocks_written",
                 "bytes_read", "bytes_written",
                 "sequential_reads", "random_reads")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.sequential_reads = 0
        self.random_reads = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
        }


class BlockDevice:
    """Common machinery: a service resource, counters, utilization."""

    def __init__(
        self,
        env: Environment,
        name: str,
        block_bytes: int,
        capacity: int,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.env = env
        self.name = name
        self.block_bytes = block_bytes
        self.resource = Resource(env, capacity=capacity)
        self.stats = DeviceStats()
        # Endurance accounting; only flash devices attach a model.
        self.wear: Optional[WearModel] = None

    def utilization(self) -> float:
        """Fraction of elapsed time the device was busy."""
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.resource.busy_time() / self.env.now)

    # Subclasses supply _service_read / _service_write returning seconds.

    def read(self, offset_block: int, nblocks: int):
        """Read ``nblocks`` starting at ``offset_block``; yields until done."""
        if nblocks <= 0:
            return 0.0
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        with self.resource.request() as req:
            yield req
            start = self.env.now
            service = self._service_read(offset_block, nblocks)
            yield self.env.timeout(service)
        self.stats.reads += 1
        self.stats.blocks_read += nblocks
        self.stats.bytes_read += nblocks * self.block_bytes
        if tracer is not None:
            # ``queued`` separates time spent waiting for a channel from
            # the service time the span's duration otherwise implies.
            tracer.span_end(f"dev.{self.name}.read", t0, self.env.now,
                            blocks=nblocks, queued=start - t0)
        return self.env.now - start

    def write(self, offset_block: int, nblocks: int):
        """Write ``nblocks`` starting at ``offset_block``; yields until done."""
        if nblocks <= 0:
            return 0.0
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        with self.resource.request() as req:
            yield req
            start = self.env.now
            service = self._service_write(offset_block, nblocks)
            yield self.env.timeout(service)
        self.stats.writes += 1
        self.stats.blocks_written += nblocks
        self.stats.bytes_written += nblocks * self.block_bytes
        # Wear is charged at the same site as the stats so the auditor's
        # device/wear reconciliation holds at every event boundary.
        if self.wear is not None:
            self.wear.record_write(nblocks)
        if tracer is not None:
            tracer.span_end(f"dev.{self.name}.write", t0, self.env.now,
                            blocks=nblocks, queued=start - t0)
        return self.env.now - start

    def _service_read(self, offset_block: int, nblocks: int) -> float:
        raise NotImplementedError

    def _service_write(self, offset_block: int, nblocks: int) -> float:
        raise NotImplementedError


class HDD(BlockDevice):
    """Single-spindle disk with sequential-run detection.

    The head position is tracked across requests: a request that starts
    where the previous one ended is serviced at pure transfer speed.
    """

    def __init__(
        self,
        env: Environment,
        block_bytes: int,
        spec: Optional[HDDSpec] = None,
        rng: Optional[random.Random] = None,
        name: str = "hdd",
    ) -> None:
        super().__init__(env, name, block_bytes, capacity=1)
        self.spec = spec or HDDSpec()
        self._rng = rng or random.Random(0)
        self._head_block: Optional[int] = None

    def _positioned_time(self, offset_block: int, nblocks: int) -> float:
        sequential = self._head_block == offset_block
        if sequential:
            self.stats.sequential_reads += 1
        else:
            self.stats.random_reads += 1
        # Seek cost varies +-50% around the average for short/long seeks.
        factor = 0.5 + self._rng.random()
        service = self.spec.access_time(
            nblocks * self.block_bytes, sequential=sequential, seek_factor=factor
        )
        self._head_block = offset_block + nblocks
        return service

    def _service_read(self, offset_block: int, nblocks: int) -> float:
        return self._positioned_time(offset_block, nblocks)

    def _service_write(self, offset_block: int, nblocks: int) -> float:
        return self._positioned_time(offset_block, nblocks)


class SSD(BlockDevice):
    """Flash device with channel parallelism and asymmetric read/write."""

    def __init__(
        self,
        env: Environment,
        block_bytes: int,
        spec: Optional[SSDSpec] = None,
        name: str = "ssd",
    ) -> None:
        spec = spec or SSDSpec()
        super().__init__(env, name, block_bytes, capacity=spec.channels)
        self.spec = spec
        self.wear = WearModel(
            block_bytes=block_bytes,
            capacity_bytes=int(spec.capacity_gb * 1024 * 1024 * 1024),
            pe_cycles=spec.pe_cycles,
            erase_block_kb=spec.erase_block_kb,
            waf=spec.waf,
        )

    def _service_read(self, offset_block: int, nblocks: int) -> float:
        return self.spec.read_time(nblocks * self.block_bytes)

    def _service_write(self, offset_block: int, nblocks: int) -> float:
        return self.spec.write_time(nblocks * self.block_bytes)
