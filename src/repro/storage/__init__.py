"""Storage device models: HDD, SSD, and memory-copy cost specs."""

from .device import SSD, BlockDevice, DeviceStats, HDD
from .specs import KB, MB, HDDSpec, MemSpec, SSDSpec

__all__ = [
    "KB",
    "MB",
    "BlockDevice",
    "DeviceStats",
    "HDD",
    "HDDSpec",
    "MemSpec",
    "SSD",
    "SSDSpec",
]
