"""Page-level bookkeeping records for the guest page cache."""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["PageEntry", "BlockKey", "SeqCounter"]


class SeqCounter:
    """A VM-wide monotonically increasing access stamp.

    Shared between the page cache and all anon spaces of one VM so that
    cross-cgroup "who is coldest" comparisons (the global-LRU
    approximation used for VM-level reclaim) are meaningful.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        self.value += 1
        return self.value

#: Identity of a file block inside one VM: (inode number, block offset).
BlockKey = Tuple[int, int]


class PageEntry:
    """State of one cached file block in a guest page cache."""

    __slots__ = ("inode", "block", "cgroup_id", "dirty", "dirty_since", "seq")

    def __init__(self, inode: int, block: int, cgroup_id: int, seq: int) -> None:
        self.inode = inode
        self.block = block
        #: The container charged for this page (cleancache pool owner).
        self.cgroup_id = cgroup_id
        self.dirty = False
        #: Simulation time the page was first dirtied (for writeback aging).
        self.dirty_since: Optional[float] = None
        #: VM-wide access sequence number (global-LRU approximation).
        self.seq = seq

    @property
    def key(self) -> BlockKey:
        return (self.inode, self.block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "D" if self.dirty else "C"
        return f"<Page {self.inode}:{self.block} cg={self.cgroup_id} {flag}>"
