"""The guest OS page cache (file pages only; anon memory lives in
:mod:`repro.mem.anon`).

Pure data structure: no simulated time here.  The guest OS orchestrates IO
and reclaim around it, so that device waits and cleancache puts happen in
simulation processes.

Design notes
------------
* Pages are charged to the cgroup of the process that first touched them
  (Linux memcg semantics); per-cgroup LRUs drive cgroup-local reclaim.
* Every access stamps a VM-wide sequence number, giving a cheap
  approximation of the kernel's global LRU for VM-level reclaim: the
  container owning the *coldest* page is the global reclaim victim.
* Dirty pages are tracked in a separate insertion-ordered dict so the
  writeback flusher can expire them oldest-first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .page import BlockKey, PageEntry, SeqCounter

__all__ = ["PageCache"]


class PageCache:
    """Block-granular page cache with per-cgroup LRUs."""

    def __init__(self, seq: Optional[SeqCounter] = None) -> None:
        #: All resident file pages of the VM.
        self.entries: Dict[BlockKey, PageEntry] = {}
        #: Per-cgroup LRU (least-recently-used first).
        self.lrus: Dict[int, "OrderedDict[BlockKey, PageEntry]"] = {}
        #: Dirty pages in first-dirtied order (for the flusher).
        self.dirty: "OrderedDict[BlockKey, PageEntry]" = OrderedDict()
        #: VM-wide access counter (shared with anon spaces for global LRU).
        self.seq = seq or SeqCounter()

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self.entries

    def cgroup_pages(self, cgroup_id: int) -> int:
        """Resident file pages charged to ``cgroup_id``."""
        lru = self.lrus.get(cgroup_id)
        return len(lru) if lru is not None else 0

    # -- access paths ------------------------------------------------------------

    def lookup(self, key: BlockKey) -> Optional[PageEntry]:
        """Hit test; bumps LRU position and sequence on hit."""
        entry = self.entries.get(key)
        if entry is None:
            return None
        # Inlined self.seq.next(): this is the hottest guest-side call.
        seq = self.seq
        seq.value += 1
        entry.seq = seq.value
        self.lrus[entry.cgroup_id].move_to_end(key)
        return entry

    def peek(self, key: BlockKey) -> Optional[PageEntry]:
        """Hit test without perturbing LRU state."""
        return self.entries.get(key)

    def insert(self, key: BlockKey, cgroup_id: int) -> PageEntry:
        """Add a clean page charged to ``cgroup_id`` (must not be present)."""
        if key in self.entries:
            raise ValueError(f"page {key} already cached")
        seq = self.seq
        seq.value += 1
        entry = PageEntry(key[0], key[1], cgroup_id, seq.value)
        self.entries[key] = entry
        lru = self.lrus.get(cgroup_id)
        if lru is None:
            lru = OrderedDict()
            self.lrus[cgroup_id] = lru
        lru[key] = entry
        return entry

    def mark_dirty(self, entry: PageEntry, now: float) -> None:
        """Transition a page to dirty (no-op if already dirty)."""
        if not entry.dirty:
            entry.dirty = True
            entry.dirty_since = now
            self.dirty[entry.key] = entry

    def mark_clean(self, entry: PageEntry) -> None:
        """Transition a page back to clean after writeback."""
        if entry.dirty:
            entry.dirty = False
            entry.dirty_since = None
            self.dirty.pop(entry.key, None)

    def remove(self, key: BlockKey) -> Optional[PageEntry]:
        """Drop a page entirely (eviction, truncation)."""
        entry = self.entries.pop(key, None)
        if entry is None:
            return None
        self.lrus[entry.cgroup_id].pop(key, None)
        if entry.dirty:
            self.dirty.pop(key, None)
        return entry

    # -- reclaim support ---------------------------------------------------------

    def coldest(self, cgroup_id: int) -> Optional[PageEntry]:
        """The LRU-end page of one cgroup, or ``None``."""
        lru = self.lrus.get(cgroup_id)
        if not lru:
            return None
        key = next(iter(lru))
        return lru[key]

    def coldest_cgroup(self) -> Optional[int]:
        """The cgroup owning the globally coldest page (min sequence)."""
        best_cg: Optional[int] = None
        best_seq: Optional[int] = None
        for cgroup_id, lru in self.lrus.items():
            if not lru:
                continue
            entry = lru[next(iter(lru))]
            if best_seq is None or entry.seq < best_seq:
                best_seq = entry.seq
                best_cg = cgroup_id
        return best_cg

    def take_coldest(
        self, cgroup_id: int, count: int
    ) -> Tuple[List[PageEntry], List[PageEntry]]:
        """Detach up to ``count`` coldest pages of a cgroup.

        Returns ``(clean, dirty)`` lists; the pages are fully removed from
        the cache — the caller is responsible for writeback/cleancache.
        """
        lru = self.lrus.get(cgroup_id)
        clean: List[PageEntry] = []
        dirty: List[PageEntry] = []
        if not lru:
            return clean, dirty
        while lru and len(clean) + len(dirty) < count:
            key, entry = lru.popitem(last=False)
            del self.entries[key]
            if entry.dirty:
                self.dirty.pop(key, None)
                dirty.append(entry)
            else:
                clean.append(entry)
        return clean, dirty

    def remove_inode(self, inode: int, keys_hint: Optional[List[BlockKey]] = None) -> List[PageEntry]:
        """Drop all resident pages of one file (deletion/truncation).

        ``keys_hint`` (the file's block list) avoids a full scan.
        """
        removed: List[PageEntry] = []
        if keys_hint is not None:
            for key in keys_hint:
                entry = self.remove(key)
                if entry is not None:
                    removed.append(entry)
            return removed
        victims = [key for key in self.entries if key[0] == inode]
        for key in victims:
            entry = self.remove(key)
            if entry is not None:
                removed.append(entry)
        return removed

    def expired_dirty(self, now: float, max_age: float, limit: int) -> List[PageEntry]:
        """Up to ``limit`` dirty pages older than ``max_age`` (oldest first)."""
        out: List[PageEntry] = []
        for entry in self.dirty.values():
            if entry.dirty_since is None or now - entry.dirty_since < max_age:
                break
            out.append(entry)
            if len(out) >= limit:
                break
        return out

    def dirty_of_inode(self, inode: int, keys_hint: Optional[List[BlockKey]] = None) -> List[PageEntry]:
        """All dirty pages of one file (for fsync)."""
        if keys_hint is not None:
            out = []
            for key in keys_hint:
                entry = self.dirty.get(key)
                if entry is not None:
                    out.append(entry)
            return out
        return [entry for key, entry in self.dirty.items() if key[0] == inode]
