"""Anonymous memory with swap, per container.

Applications like Redis and MySQL keep their working sets in anonymous
memory; the hypervisor cache cannot help them (Table 1's key observation).
Under memory pressure anonymous pages are swapped out and must be faulted
back in from the (slow) swap device.

Pure data structure; the guest OS charges/uncharges the owning cgroup and
performs the actual swap IO.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

__all__ = ["AnonSpace"]


class AnonSpace:
    """One container's anonymous pages (page granularity = block size)."""

    __slots__ = ("resident", "swapped", "swap_slots", "_next_slot",
                 "swap_ins", "swap_outs")

    def __init__(self) -> None:
        #: Resident pages, LRU order (values are VM-wide access seqs).
        self.resident: "OrderedDict[int, int]" = OrderedDict()
        #: Pages currently on the swap device.
        self.swapped: Set[int] = set()
        #: page -> swap slot (device block) while swapped.
        self.swap_slots: Dict[int, int] = {}
        self._next_slot = 0
        self.swap_ins = 0
        self.swap_outs = 0

    @property
    def resident_pages(self) -> int:
        return len(self.resident)

    @property
    def swapped_pages(self) -> int:
        return len(self.swapped)

    def is_resident(self, page: int) -> bool:
        return page in self.resident

    def is_swapped(self, page: int) -> bool:
        return page in self.swapped

    def touch(self, page: int, seq: int) -> str:
        """Access a page; returns its prior state.

        ``"resident"`` — LRU bumped; ``"swapped"`` — caller must fault it
        in (then call :meth:`fault_in`); ``"new"`` — caller must charge and
        call :meth:`map_new`.
        """
        if page in self.resident:
            self.resident.move_to_end(page)
            self.resident[page] = seq
            return "resident"
        if page in self.swapped:
            return "swapped"
        return "new"

    def map_new(self, page: int, seq: int) -> None:
        """Make a never-seen page resident."""
        if page in self.resident or page in self.swapped:
            raise ValueError(f"anon page {page} already mapped")
        self.resident[page] = seq

    def fault_in(self, page: int, seq: int) -> int:
        """Bring a swapped page back; returns the swap slot it came from."""
        if page not in self.swapped:
            raise ValueError(f"anon page {page} is not swapped")
        self.swapped.discard(page)
        slot = self.swap_slots.pop(page)
        self.resident[page] = seq
        self.swap_ins += 1
        return slot

    def swap_out_coldest(self, count: int) -> List[int]:
        """Detach up to ``count`` coldest resident pages to swap.

        Returns the swap slots written (callers issue the device writes).
        """
        slots: List[int] = []
        while self.resident and len(slots) < count:
            page, _ = self.resident.popitem(last=False)
            slot = self._next_slot
            self._next_slot += 1
            self.swapped.add(page)
            self.swap_slots[page] = slot
            self.swap_outs += 1
            slots.append(slot)
        return slots

    def coldest_seq(self) -> Optional[int]:
        """Sequence number of the coldest resident page (global LRU)."""
        if not self.resident:
            return None
        return self.resident[next(iter(self.resident))]

    def release_all(self) -> int:
        """Free everything (container teardown); returns pages released."""
        freed = len(self.resident)
        self.resident.clear()
        self.swapped.clear()
        self.swap_slots.clear()
        return freed
