"""Guest memory subsystems: page cache, anonymous memory, swap state."""

from .anon import AnonSpace
from .page import BlockKey, PageEntry
from .pagecache import PageCache

__all__ = ["AnonSpace", "BlockKey", "PageCache", "PageEntry"]
