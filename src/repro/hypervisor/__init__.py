"""Host machine and hypervisor-side plumbing."""

from .host import Host, HostSpec

__all__ = ["Host", "HostSpec"]
