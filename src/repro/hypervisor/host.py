"""The physical host: devices, the hypervisor, VM lifecycle.

A :class:`Host` wires together the shared HDD (backing all virtual disks
and swap areas), the SSD (available to the hypervisor cache), and whatever
hypervisor-cache implementation an experiment installs.  It hands out
virtual-disk regions so different VMs' IO streams never look sequential to
the spindle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import (
    DDConfig,
    DoubleDeckerCache,
    GlobalCache,
    HypervisorCacheBase,
    NullCache,
    StaticPartitionCache,
)
from ..guest import VirtualMachine
from ..metrics import MetricsRegistry, Sampler
from ..obs import tracer as _obs
from ..simkernel import Environment, RandomStreams
from ..storage import HDD, KB, SSD, HDDSpec, SSDSpec

__all__ = ["Host", "HostSpec"]

#: Virtual-disk region stride between VMs (in blocks); swap lives halfway.
_VM_DISK_STRIDE = 1 << 32
_SWAP_OFFSET = 1 << 31


@dataclass(frozen=True)
class HostSpec:
    """Hardware of the testbed (defaults mirror the paper's server)."""

    memory_mb: float = 32768.0
    cpus: int = 16
    block_kb: int = 64
    hdd: HDDSpec = field(default_factory=HDDSpec)
    ssd: SSDSpec = field(default_factory=SSDSpec)

    @property
    def block_bytes(self) -> int:
        return self.block_kb * KB


class Host:
    """One physical machine of the derivative cloud."""

    def __init__(
        self,
        env: Environment,
        spec: Optional[HostSpec] = None,
        streams: Optional[RandomStreams] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.spec = spec or HostSpec()
        self.streams = streams or RandomStreams(0)
        self.registry = registry or MetricsRegistry()
        tracer = _obs.ACTIVE
        if tracer is not None:
            # Run reports read op latencies straight from the registry.
            tracer.bind_registry(self.registry)
        self.block_bytes = self.spec.block_bytes
        self.hdd = HDD(
            env,
            self.block_bytes,
            spec=self.spec.hdd,
            rng=self.streams.stream("host.hdd"),
        )
        self.ssd = SSD(env, self.block_bytes, spec=self.spec.ssd)
        self.hvcache: HypervisorCacheBase = NullCache()
        self.vms: Dict[str, VirtualMachine] = {}
        self._vm_count = 0
        #: Virtual-disk region bases retired by destroy_vm, reused (lowest
        #: first) before the allocator grows — destroyed VMs leave no
        #: address-space residue.
        self._free_disk_bases: List[int] = []
        self.sampler = Sampler(env, self.registry, interval=10.0)
        # Endurance gauges: the SSD's wear trajectory is part of every
        # run's metrics, whether or not an experiment looks at it.
        wear = self.ssd.wear
        assert wear is not None
        self.sampler.add(
            "host.ssd.gb_written", lambda: wear.host_bytes_written / (1024 ** 3)
        )
        self.sampler.add("host.ssd.wear_pct", lambda: 100.0 * wear.wear_fraction)

    # -- hypervisor cache installation -------------------------------------------

    def install_doubledecker(
        self, config: DDConfig, name: str = "ddecker"
    ) -> DoubleDeckerCache:
        """Run DoubleDecker as the host's hypervisor cache.

        ``name`` becomes the cache's decision-provenance label; a fleet
        passes one per host (e.g. ``"host2.ddecker"``) so multi-host
        traces never mix.
        """
        ssd_device = self.ssd if config.ssd_capacity_mb > 0 else None
        cache = DoubleDeckerCache(
            self.env, config, self.block_bytes, ssd_device=ssd_device,
            name=name,
        )
        self.hvcache = cache
        return cache

    def install_global_cache(
        self,
        capacity_mb: float,
        per_vm_cap_mb: Optional[float] = None,
        exclusive: bool = True,
    ) -> GlobalCache:
        """Run the nesting-agnostic baseline cache."""
        cache = GlobalCache(
            self.env,
            capacity_mb,
            self.block_bytes,
            per_vm_cap_mb=per_vm_cap_mb,
            exclusive=exclusive,
        )
        self.hvcache = cache
        return cache

    def install_static_partition(self, capacity_mb: float) -> StaticPartitionCache:
        """Run the centralized static-partition baseline (Morai++)."""
        cache = StaticPartitionCache(self.env, capacity_mb, self.block_bytes)
        self.hvcache = cache
        return cache

    def install_null_cache(self) -> NullCache:
        """Disable hypervisor caching entirely."""
        cache = NullCache()
        self.hvcache = cache
        return cache

    # -- VM lifecycle ------------------------------------------------------------------

    def create_vm(
        self,
        name: str,
        memory_mb: float,
        vcpus: int = 4,
        cache_weight: float = 100.0,
        kernel_reserve_mb: float = 64.0,
        readahead_blocks: int = 0,
    ) -> VirtualMachine:
        """Boot a VM and register it with the hypervisor cache."""
        if name in self.vms:
            raise ValueError(f"VM {name!r} already exists")
        vm_id = self.hvcache.register_vm(name, cache_weight)
        if self._free_disk_bases:
            disk_base = heapq.heappop(self._free_disk_bases)
        else:
            disk_base = self._vm_count * _VM_DISK_STRIDE
            self._vm_count += 1
        vm = VirtualMachine(
            self.env,
            name=name,
            memory_mb=memory_mb,
            vcpus=vcpus,
            block_bytes=self.block_bytes,
            disk=self.hdd,
            hvcache=self.hvcache,
            vm_id=vm_id,
            disk_base_block=disk_base,
            kernel_reserve_mb=kernel_reserve_mb,
            reclaim_rng=self.streams.stream(f"vm.{name}.reclaim"),
            readahead_blocks=readahead_blocks,
        )
        vm.os.swap_base = disk_base + _SWAP_OFFSET
        self.vms[name] = vm
        return vm

    def destroy_vm(self, vm: VirtualMachine) -> None:
        """Tear a VM down (all its pools are freed).

        Leaves zero host-side residue: the hypervisor-cache registration,
        the VM's virtual-disk region, and the per-VM RNG stream are all
        retired (``repro.core.audit.check_host`` asserts this).  The VM's
        cleancache client is disabled so any guest process still in
        flight degrades to no-ops instead of touching the cache under a
        stale ``vm_id``.
        """
        vm.cleancache.enabled = False
        self.hvcache.unregister_vm(vm.vm_id)
        heapq.heappush(self._free_disk_bases, vm.disk_base_block)
        self.streams.drop(f"vm.{vm.name}.reclaim")
        del self.vms[vm.name]

    def set_vm_cache_weight(self, vm: VirtualMachine, weight: float) -> None:
        """Hypervisor-level policy: change a VM's cache share weight."""
        self.hvcache.set_vm_weight(vm.vm_id, weight)

    def vm(self, name: str) -> VirtualMachine:
        return self.vms[name]
