"""Interprocedural nondeterminism taint analysis (rule DD011).

The taint lattice is deliberately tiny — a value is *tainted* or it is
not — because every tracked source is binary-poisonous to fixed-seed
replay:

* wall-clock reads (``time.time``/``monotonic``/``perf_counter``/…,
  ``datetime.now``/``utcnow``/``today``);
* module-global unseeded ``random`` calls;
* builtin ``hash()`` / ``id()`` (both vary per process under
  ``PYTHONHASHSEED`` / allocator behaviour);
* ``os.environ`` / ``os.getenv`` reads;
* iteration order of unordered sets (``set``/``frozenset`` literals,
  comprehensions, and constructor calls) — *order* taint, cleansed by
  ``sorted``/``min``/``max``/``sum``/``len``, which the value sources
  are not.

Propagation runs to a fixed point over the project call graph:

1. intra-function: statement-level transfer taints local names assigned
   from tainted expressions (loops included — the per-function pass
   itself iterates until stable);
2. function summaries: a function whose ``return`` expression is tainted
   has a *tainted return*; every resolved call site of it becomes a
   taint atom in its callers;
3. class attributes: ``self.x = <tainted>`` taints attribute ``x`` for
   the whole class, so state stashed in one method and consumed in
   another still carries.

A finding is reported where taint is *introduced* inside a decision
sink — a function whose name matches :data:`repro.lint.rules.DECISION_NAME_RE`
or which writes put-outcome ledger fields — and carries the full
source→sink witness chain.  The real-time modules (``service/``,
``obs/live.py``) are exempt: wall clock is their job, and DD010/DD012
police them instead.

Known false negatives (documented in docs/LINTING.md): calls the graph
cannot resolve produce no edge; container element-wise taint is not
tracked (``d[k] = tainted`` taints ``d`` only when ``d`` is a ``self``
attribute); taint through ``*args``/``**kwargs`` forwarding is dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, Project, dotted_name, own_nodes
from .engine import Finding, WitnessHop
from .rules import DECISION_NAME_RE, LEDGER_FIELDS, REALTIME_MODULES

__all__ = ["analyze_taint"]

_RULE_ID = "DD011"

_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}
_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "random_bytes", "randbytes",
}
#: Order-insensitive consumers: an unordered set passed straight into one
#: of these yields a deterministic value, so ORDER taint stops here.
_ORDER_CLEANSERS = {"sorted", "min", "max", "sum", "len", "frozenset", "set", "any", "all"}


@dataclass(frozen=True)
class TaintReason:
    """Why one function's return (or one class attribute) is tainted."""

    rel: str
    line: int
    note: str
    via: Optional[str]        # qual of the callee that carried the taint
    via_attr: Optional[Tuple[str, str]] = None   # (module:Class, attr)


class _ModuleEnv:
    """Per-module alias view of the nondeterminism source modules."""

    def __init__(self, module: ModuleInfo) -> None:
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()      # names bound to the *module*
        self.datetime_cls_aliases: Set[str] = set()  # names bound to the class
        self.random_aliases: Set[str] = set()
        self.os_aliases: Set[str] = set()
        self.environ_aliases: Set[str] = set()
        self.getenv_aliases: Set[str] = set()
        self.wall_fn_aliases: Dict[str, str] = {}    # local -> "time.time" etc.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(local)
                    elif alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "os":
                        self.os_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "time" and alias.name in _WALL_CLOCK_TIME_FNS:
                        self.wall_fn_aliases[local] = f"time.{alias.name}"
                    elif node.module == "datetime" and alias.name == "datetime":
                        self.datetime_cls_aliases.add(local)
                    elif node.module == "os" and alias.name == "environ":
                        self.environ_aliases.add(local)
                    elif node.module == "os" and alias.name == "getenv":
                        self.getenv_aliases.add(local)
                    elif node.module == "random" and alias.name in _RANDOM_MODULE_FNS:
                        self.wall_fn_aliases[local] = f"random.{alias.name}"


def _source_note(env: _ModuleEnv, node: ast.AST) -> Optional[str]:
    """Human-readable description if ``node`` is a direct value source."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("hash", "id"):
                return f"builtin {func.id}() varies per process"
            alias = env.wall_fn_aliases.get(func.id)
            if alias is not None:
                kind = "wall-clock" if alias.startswith("time.") else "unseeded random"
                return f"{kind} {alias}()"
            if func.id in env.getenv_aliases:
                return "os.getenv() read"
        elif isinstance(func, ast.Attribute):
            recv = dotted_name(func.value)
            if recv in env.time_aliases and func.attr in _WALL_CLOCK_TIME_FNS:
                return f"wall-clock time.{func.attr}()"
            if recv in env.random_aliases and func.attr in _RANDOM_MODULE_FNS:
                return f"unseeded random.{func.attr}()"
            if recv in env.os_aliases and func.attr == "getenv":
                return "os.getenv() read"
            if (recv in env.datetime_cls_aliases
                    and func.attr in _WALL_CLOCK_DATETIME_FNS):
                return f"wall-clock datetime.{func.attr}()"
            if recv is not None and func.attr in _WALL_CLOCK_DATETIME_FNS:
                parts = recv.split(".")
                if (len(parts) == 2 and parts[0] in env.datetime_aliases
                        and parts[1] == "datetime"):
                    return f"wall-clock datetime.{func.attr}()"
    elif isinstance(node, ast.Attribute):
        recv = dotted_name(node.value)
        if recv in env.os_aliases and node.attr == "environ":
            return "os.environ read"
    elif isinstance(node, ast.Name):
        if node.id in env.environ_aliases:
            return "os.environ read"
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _FunctionAnalysis:
    """Intra-function taint pass, re-runnable as summaries improve."""

    def __init__(
        self,
        graph: CallGraph,
        env: _ModuleEnv,
        func: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.env = env
        self.func = func
        self.tainted_locals: Set[str] = set()
        #: local name -> reason chain anchor for witness reconstruction.
        self.local_reasons: Dict[str, TaintReason] = {}

    # -- expression classification --------------------------------------

    def _atom_reason(self, node: ast.AST) -> Optional[TaintReason]:
        """Taint atom: direct source, tainted local, tainted attr read,
        or call to a tainted-return function."""
        note = _source_note(self.env, node)
        if note is not None:
            return TaintReason(self.func.rel, node.lineno, note, via=None)
        if isinstance(node, ast.Name) and node.id in self.tainted_locals:
            return self.local_reasons.get(node.id)
        if isinstance(node, ast.Attribute):
            recv = dotted_name(node.value)
            if recv == "self" and self.func.cls is not None:
                key = (f"{self.func.module}:{self.func.cls}", node.attr)
                reason = self.graph.project_attr_reasons.get(key)  # type: ignore[attr-defined]
                if reason is not None:
                    return TaintReason(
                        self.func.rel, node.lineno,
                        f"reads tainted attribute self.{node.attr}",
                        via=None, via_attr=key)
        if isinstance(node, ast.Call):
            callee = self.graph.resolve_call(self.func, node)
            if callee is not None and callee in self.graph.tainted_returns:  # type: ignore[attr-defined]
                return TaintReason(
                    self.func.rel, node.lineno,
                    f"call to '{callee}' whose return value is tainted",
                    via=callee)
        return None

    def _expr_reason(self, node: ast.AST) -> Optional[TaintReason]:
        """First taint atom inside an expression, honouring cleansers."""
        atom = self._atom_reason(node)
        if atom is not None:
            return atom
        if _is_set_expr(node):
            return None           # a set by itself is fine; iterating it is not
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_CLEANSERS):
            # Cleansers stop ORDER taint only; value atoms inside still count.
            for child in ast.iter_child_nodes(node):
                reason = self._expr_reason(child)
                if reason is not None:
                    return reason
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            reason = self._expr_reason(child)
            if reason is not None:
                return reason
        return None

    def _iter_order_reason(self, iter_expr: ast.AST) -> Optional[TaintReason]:
        """ORDER taint: the iterable is an unordered set expression."""
        if _is_set_expr(iter_expr):
            return TaintReason(
                self.func.rel, iter_expr.lineno,
                "iteration over an unordered set (hash-order dependent)",
                via=None)
        return None

    # -- statement transfer ---------------------------------------------

    def run(self) -> None:
        """Iterate the statement transfer to an intra-function fixed
        point (loops feed assignments back into themselves)."""
        for _ in range(12):
            before = set(self.tainted_locals)
            self._pass()
            if self.tainted_locals == before:
                break

    def _taint_target(self, target: ast.AST, reason: TaintReason) -> None:
        if isinstance(target, ast.Name):
            if target.id not in self.tainted_locals:
                self.tainted_locals.add(target.id)
                self.local_reasons[target.id] = reason
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt, reason)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value, reason)
        elif isinstance(target, ast.Attribute):
            recv = dotted_name(target.value)
            if recv == "self" and self.func.cls is not None:
                key = (f"{self.func.module}:{self.func.cls}", target.attr)
                pending = self.graph.pending_attr_taint  # type: ignore[attr-defined]
                if key not in pending:
                    pending[key] = TaintReason(
                        self.func.rel, target.lineno,
                        f"'{self.func.qual}' stores a tainted value into "
                        f"self.{target.attr}",
                        via=reason.via, via_attr=reason.via_attr)
        elif isinstance(target, ast.Subscript):
            self._taint_target(target.value, reason)

    def _pass(self) -> None:
        for node in own_nodes(self.func.node):
            if isinstance(node, ast.Assign):
                reason = self._expr_reason(node.value)
                if reason is not None:
                    for target in node.targets:
                        self._taint_target(target, reason)
            elif isinstance(node, ast.AugAssign):
                reason = self._expr_reason(node.value)
                if reason is not None:
                    self._taint_target(node.target, reason)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                reason = self._expr_reason(node.value)
                if reason is not None:
                    self._taint_target(node.target, reason)
            elif isinstance(node, ast.NamedExpr):
                reason = self._expr_reason(node.value)
                if reason is not None:
                    self._taint_target(node.target, reason)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                reason = (self._iter_order_reason(node.iter)
                          or self._expr_reason(node.iter))
                if reason is not None:
                    self._taint_target(node.target, reason)
            elif isinstance(node, ast.comprehension):
                reason = (self._iter_order_reason(node.iter)
                          or self._expr_reason(node.iter))
                if reason is not None:
                    self._taint_target(node.target, reason)

    # -- summaries -------------------------------------------------------

    def return_reason(self) -> Optional[TaintReason]:
        for node in own_nodes(self.func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                reason = self._expr_reason(node.value)
                if reason is not None:
                    return reason
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                reason = self._expr_reason(node.value)
                if reason is not None:
                    return reason
        return None

    def introductions(self) -> List[Tuple[ast.AST, TaintReason]]:
        """Every point where taint first enters this function's body."""
        found: List[Tuple[ast.AST, TaintReason]] = []
        seen_lines: Set[int] = set()
        for node in own_nodes(self.func.node):
            reason = self._atom_reason(node)
            if reason is None and isinstance(node, (ast.For, ast.AsyncFor)):
                reason = self._iter_order_reason(node.iter)
            if reason is None and isinstance(node, ast.comprehension):
                reason = self._iter_order_reason(node.iter)
            if reason is None:
                continue
            # Reads of locals are consequences of an introduction already
            # reported; anchor only genuine entries (sources, calls, attrs).
            if isinstance(node, ast.Name):
                continue
            line = getattr(node, "lineno", None)
            if line is None or line in seen_lines:
                continue
            seen_lines.add(line)
            found.append((node, reason))
        return found


def _is_realtime(module: ModuleInfo) -> bool:
    tail = module.rel
    marker = "repro/"
    idx = tail.rfind(marker)
    if idx >= 0:
        tail = tail[idx + len(marker):]
    return any(tail.startswith(prefix) if prefix.endswith("/")
               else tail == prefix for prefix in REALTIME_MODULES)


def _writes_ledger(func: FunctionInfo) -> bool:
    for node in own_nodes(func.node):
        target = None
        if isinstance(node, ast.Assign) and node.targets:
            target = node.targets[0]
        elif isinstance(node, ast.AugAssign):
            target = node.target
        if isinstance(target, ast.Attribute) and target.attr in LEDGER_FIELDS:
            return True
    return False


def _is_sink(func: FunctionInfo) -> bool:
    if func.name.startswith("__") and func.name.endswith("__"):
        return False
    return bool(DECISION_NAME_RE.search(func.name)) or _writes_ledger(func)


def _witness(
    graph: CallGraph,
    sink: FunctionInfo,
    anchor: ast.AST,
    reason: TaintReason,
) -> Tuple[WitnessHop, ...]:
    hops: List[WitnessHop] = [WitnessHop(
        sink.rel, getattr(anchor, "lineno", 1),
        f"tainted value enters decision function '{sink.qual}': {reason.note}")]
    seen: Set[str] = {sink.qual}
    current: Optional[TaintReason] = reason
    for _ in range(24):
        if current is None:
            break
        next_reason: Optional[TaintReason] = None
        if current.via is not None and current.via not in seen:
            seen.add(current.via)
            next_reason = graph.tainted_returns.get(current.via)  # type: ignore[attr-defined]
        elif current.via_attr is not None:
            key = "attr:" + ":".join(current.via_attr)
            if key not in seen:
                seen.add(key)
                next_reason = graph.project_attr_reasons.get(current.via_attr)  # type: ignore[attr-defined]
        if next_reason is None:
            break
        hops.append(WitnessHop(next_reason.rel, next_reason.line,
                               next_reason.note))
        current = next_reason
    return tuple(hops)


def analyze_taint(project: Project, graph: CallGraph) -> List[Finding]:
    """Run DD011 over ``project``; returns unsorted, unsuppressed findings."""
    envs: Dict[str, _ModuleEnv] = {
        name: _ModuleEnv(module) for name, module in project.modules.items()}

    # Shared mutable state the per-function passes read/write.  Hanging
    # it off the graph keeps the fixed-point loop free of globals.
    graph.tainted_returns = {}        # type: ignore[attr-defined]  # qual -> TaintReason
    graph.project_attr_reasons = {}   # type: ignore[attr-defined]  # (module:Class, attr) -> TaintReason
    graph.pending_attr_taint = {}     # type: ignore[attr-defined]

    in_scope = [
        func for func in project.functions.values()
        if not _is_realtime(project.modules[func.module])
    ]

    analyses: Dict[str, _FunctionAnalysis] = {}
    for _ in range(max(4, len(in_scope))):
        changed = False
        graph.pending_attr_taint = {}  # type: ignore[attr-defined]
        for func in in_scope:
            analysis = _FunctionAnalysis(graph, envs[func.module], func)
            analysis.run()
            analyses[func.qual] = analysis
            reason = analysis.return_reason()
            if reason is not None and func.qual not in graph.tainted_returns:  # type: ignore[attr-defined]
                graph.tainted_returns[func.qual] = TaintReason(  # type: ignore[attr-defined]
                    func.rel, reason.line,
                    f"'{func.qual}' returns a tainted value: {reason.note}",
                    via=reason.via, via_attr=reason.via_attr)
                changed = True
        for key, reason in graph.pending_attr_taint.items():  # type: ignore[attr-defined]
            if key not in graph.project_attr_reasons:  # type: ignore[attr-defined]
                graph.project_attr_reasons[key] = reason  # type: ignore[attr-defined]
                changed = True
        if not changed:
            break

    findings: List[Finding] = []
    for func in in_scope:
        if not _is_sink(func):
            continue
        analysis = analyses.get(func.qual)
        if analysis is None:
            continue
        for anchor, reason in analysis.introductions():
            findings.append(Finding(
                rule_id=_RULE_ID,
                severity="error",
                path=func.rel,
                line=getattr(anchor, "lineno", 1),
                col=getattr(anchor, "col_offset", 0),
                message=(f"nondeterministic value reaches decision sink "
                         f"'{func.qual}': {reason.note}"),
                witness=_witness(graph, func, anchor, reason),
            ))
    return findings
