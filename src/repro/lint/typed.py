"""The typed-core gate: annotation completeness + optional mypy hand-off.

Two layers, because the hermetic test container has no mypy:

* :class:`TypedCoreRule` (TC001) is a self-contained AST check that every
  function in the typed-core module set carries complete parameter and
  return annotations — the property ``mypy --strict``'s
  ``disallow-untyped-defs``/``disallow-incomplete-defs`` would enforce.
  It always runs, everywhere, as part of ``python -m repro.lint``.
* :func:`run_mypy` shells out to the real scoped ``mypy`` gate (configured
  in ``pyproject.toml``) when the tool is installed — CI installs it —
  and reports a skip (exit 0) when it is not, so the lint driver stays
  runnable in the container.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
from typing import Iterable, List, Tuple

from .engine import Finding, LintContext, Rule

__all__ = ["TYPED_CORE_MODULES", "TypedCoreRule", "run_mypy"]

#: Modules held to full annotation coverage (mirrors the strict
#: per-module overrides in pyproject's [tool.mypy] section).
TYPED_CORE_MODULES = (
    "core/victim.py",
    "core/radix.py",
    "core/stats.py",
    "core/engine.py",
    "lint/engine.py",
    "lint/rules.py",
    "lint/typed.py",
)


class TypedCoreRule(Rule):
    rule_id = "TC001"
    severity = "error"
    title = "typed-core module with incomplete annotations"
    rationale = (
        "repro.core.victim / repro.core.radix (and this suite itself) "
        "are held to mypy --strict; every def must annotate all "
        "parameters and the return type so the gate stays green without "
        "a local mypy install."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.module_tail() not in TYPED_CORE_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = self._missing_annotations(node)
            if missing:
                yield self.finding(
                    ctx, node,
                    f"def {node.name}() is missing annotations for: "
                    f"{', '.join(missing)} (typed-core gate, mypy --strict)")

    @staticmethod
    def _missing_annotations(node: ast.AST) -> List[str]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        missing: List[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        # ``self``/``cls`` never need annotations, matching mypy --strict.
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        return missing


def run_mypy(packages: Iterable[str] = ("repro.core", "repro.simkernel",
                                        "repro.endurance")) -> Tuple[int, str]:
    """Run the scoped mypy gate if mypy is installed.

    Returns ``(exit_code, output)``; a missing mypy is a *skip* (code 0)
    so the driver works in hermetic containers — CI installs mypy and
    gets the real gate.
    """
    if shutil.which("mypy") is None:
        return 0, "mypy not installed — typed-core gate ran via TC001 only"
    cmd = ["mypy"]
    for package in packages:
        cmd.extend(["-p", package])
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr
