"""Command-line driver for sim-lint.

Usage::

    python -m repro.lint                      # lint src/ and tests/
    python -m repro.lint src tests --strict   # per-file CI gate
    python -m repro.lint --interprocedural --strict   # + whole-program rules
    python -m repro.lint --changed            # only files differing from HEAD
    python -m repro.lint --changed=main src   # ... or from a given ref
    python -m repro.lint --list-rules --format json
    python -m repro.lint src --rule DD001 --rule DD011 --format json
    python -m repro.lint --interprocedural --format sarif > lint.sarif
    python -m repro.lint --mypy               # also run the scoped mypy gate

Exit status: 0 clean; 1 findings (errors always; warnings too under
``--strict``) or a blown ``--budget``; 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
# Wall-clock use below is the CI budget gate for the analysis itself —
# host-side tooling time, never simulated state.
# dd-lint: disable-file=DD001 (lint driver measures its own wall time for --budget)
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import WHOLE_PROGRAM_RULE_IDS, AnalysisReport, analyze_paths
from .engine import (
    Finding,
    exit_code,
    format_findings_json,
    format_findings_text,
    lint_paths,
)
from .rules import ALL_RULES, rule_catalog
from .sarif import format_findings_sarif
from .typed import run_mypy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="sim-lint: determinism & invariant static analysis "
                    "for the DoubleDecker reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="DDnnn",
        help="only run the given rule id (repeatable); whole-program ids "
             "(DD011..DD014) imply --interprocedural")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings and unjustified suppressions too")
    parser.add_argument(
        "--interprocedural", action="store_true",
        help="also run the whole-program analyzers (DD011 taint, DD012 "
             "await races, DD013 generator protocol, DD014 auditor "
             "coverage) over the project call graph")
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only python files differing from the git ref (default "
             "HEAD when the flag is given bare); whole-program rules "
             "still analyze the full tree, with a note")
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="fail (exit 1) if the whole run takes longer than this — "
             "the CI guard keeping whole-program analysis fast")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit (--format json for the "
             "machine-readable form including witness-format docs)")
    parser.add_argument(
        "--mypy", action="store_true",
        help="also run the scoped mypy gate (skips cleanly if mypy "
             "is not installed)")
    return parser


def _changed_files(ref: str, parser: argparse.ArgumentParser) -> List[Path]:
    """Python files differing from ``ref`` (tracked diff + untracked)."""
    def run(*args: str) -> List[str]:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            parser.error(
                f"--changed={ref}: git failed: {proc.stderr.strip() or proc.stdout.strip()}")
        return [line for line in proc.stdout.splitlines() if line.strip()]

    names = run("diff", "--name-only", ref, "--", "*.py")
    names += run("ls-files", "--others", "--exclude-standard", "--", "*.py")
    unique = sorted(set(names))
    return [Path(name) for name in unique if Path(name).exists()]


def _print_notes(notes: Sequence[str], fmt: str) -> None:
    """Notes go to stdout in text mode (part of the report) and stderr
    in json/sarif mode (stdout must stay machine-parseable)."""
    stream = sys.stdout if fmt == "text" else sys.stderr
    for note in notes:
        print(f"sim-lint: note: {note}", file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalog = rule_catalog()
        if args.format == "json":
            print(json.dumps({"version": 1, "rules": catalog},
                             indent=2, sort_keys=True))
        else:
            for entry in catalog:
                print(f"{entry['id']}  [{entry['severity']:7s}] "
                      f"({entry['scope']}) {entry['title']}")
                print(f"       {entry['rationale']}")
                if entry["witness"]:
                    print(f"       witness: {entry['witness']}")
        return 0

    started = time.perf_counter()

    rules = list(ALL_RULES)
    interproc_ids: Optional[List[str]] = None
    if args.rule:
        wanted = set(args.rule)
        # DD000 (pragma defects) is a pseudo-rule emitted by the engine.
        known = ({rule.rule_id for rule in rules}
                 | set(WHOLE_PROGRAM_RULE_IDS) | {"DD000"})
        unknown = sorted(wanted - known)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(see --list-rules)")
        rules = [rule for rule in rules if rule.rule_id in wanted]
        interproc_ids = sorted(wanted & set(WHOLE_PROGRAM_RULE_IDS))
        if interproc_ids:
            args.interprocedural = True

    raw_paths = args.paths or ["src", "tests"]
    paths: List[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such path: {raw}")
        paths.append(path)

    notes: List[str] = []
    per_file_paths = paths
    if args.changed is not None:
        changed = _changed_files(args.changed, parser)
        requested = [p.resolve() for p in paths]
        per_file_paths = [
            c for c in changed
            if any(c.resolve() == r or r in c.resolve().parents
                   for r in requested)
        ]
        notes.append(
            f"--changed={args.changed}: {len(per_file_paths)} changed "
            f"python file(s) in scope")

    findings: List[Finding] = []
    if rules and per_file_paths:
        findings.extend(lint_paths(per_file_paths, rules))
    if args.interprocedural:
        if args.changed is not None:
            notes.append(
                "whole-program rules cannot run incrementally: analyzing "
                "the full tree (per-file rules stayed on the changed set)")
        report: AnalysisReport = analyze_paths(paths, rule_ids=interproc_ids)
        notes.extend(report.notes)
        findings.extend(report.findings)
    findings.sort(key=Finding.sort_key)
    if args.rule and "DD000" not in set(args.rule):
        # --rule narrows the report to the requested ids; pragma-defect
        # findings (DD000) ride along only when asked for explicitly.
        findings = [f for f in findings if f.rule_id != "DD000"]
    status = exit_code(findings, strict=args.strict)

    _print_notes(notes, args.format)
    if args.format == "json":
        print(format_findings_json(findings, strict=args.strict))
    elif args.format == "sarif":
        print(format_findings_sarif(findings))
    else:
        print(format_findings_text(findings))

    if args.mypy:
        mypy_status, mypy_output = run_mypy()
        print(mypy_output.rstrip() or "(mypy produced no output)")
        status = status or (1 if mypy_status else 0)

    elapsed = time.perf_counter() - started
    if args.budget is not None and elapsed > args.budget:
        print(f"sim-lint: analysis wall time {elapsed:.2f}s exceeded the "
              f"--budget of {args.budget:.2f}s", file=sys.stderr)
        status = status or 1

    return status


if __name__ == "__main__":
    sys.exit(main())
