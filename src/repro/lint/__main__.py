"""Command-line driver for sim-lint.

Usage::

    python -m repro.lint                      # lint src/ and tests/
    python -m repro.lint src tests --strict   # the CI gate
    python -m repro.lint --list-rules
    python -m repro.lint src --rule DD001 --rule DD003 --format json
    python -m repro.lint --mypy               # also run the scoped mypy gate

Exit status: 0 clean; 1 findings (errors always; warnings too under
``--strict``); 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import (
    exit_code,
    format_findings_json,
    format_findings_text,
    lint_paths,
)
from .rules import ALL_RULES, rule_catalog
from .typed import run_mypy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="sim-lint: determinism & invariant static analysis "
                    "for the DoubleDecker reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="DDnnn",
        help="only run the given rule id (repeatable)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings and unjustified suppressions too")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--mypy", action="store_true",
        help="also run the scoped mypy gate (skips cleanly if mypy "
             "is not installed)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']}  [{entry['severity']:7s}] {entry['title']}")
            print(f"       {entry['rationale']}")
        return 0

    rules = ALL_RULES
    if args.rule:
        wanted = set(args.rule)
        # DD000 (pragma defects) is a pseudo-rule emitted by the engine.
        known = {rule.rule_id for rule in rules} | {"DD000"}
        unknown = sorted(wanted - known)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(see --list-rules)")
        rules = [rule for rule in rules if rule.rule_id in wanted]

    raw_paths = args.paths or ["src", "tests"]
    paths: List[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such path: {raw}")
        paths.append(path)

    findings = lint_paths(paths, rules)
    if args.rule and "DD000" not in set(args.rule):
        # --rule narrows the report to the requested ids; pragma-defect
        # findings (DD000) ride along only when asked for explicitly.
        findings = [f for f in findings if f.rule_id != "DD000"]
    status = exit_code(findings, strict=args.strict)

    if args.format == "json":
        print(format_findings_json(findings, strict=args.strict))
    else:
        print(format_findings_text(findings))

    if args.mypy:
        mypy_status, mypy_output = run_mypy()
        print(mypy_output.rstrip() or "(mypy produced no output)")
        status = status or (1 if mypy_status else 0)

    return status


if __name__ == "__main__":
    sys.exit(main())
