"""Runtime nondeterminism sanitizer — the dynamic half of sim-lint.

Static rules catch what the AST shows; this module catches what only a
run shows.  ``python -m repro.lint.sanitize`` performs a smoke run that:

1. asserts ``PYTHONHASHSEED`` discipline (set, and not ``random``) so
   hash order is pinned for the process under test;
2. installs *decision-path guards*: the Algorithm 1 entry points
   (``get_victim``, ``fallback_victim``, ``selection_state``) are wrapped
   to reject unordered containers (``set``/``frozenset``/dict views) at
   the call boundary — the runtime analogue of static rule DD003;
3. runs a fixed-seed experiment **twice in the same process** and
   compares the two summaries byte-for-byte, which flushes out leaked
   module-global state as well as hash-order dependence.

The CLI additionally runs the *static* whole-program pre-pass (DD011–
DD014 over the installed ``repro`` tree) before spending any time on
the runtime smoke — an interprocedural taint path or await race should
fail the sanitizer even on a workload too small to trip it dynamically.
``--no-static`` skips it (the test suite covers it separately).

Exit status: 0 when the smoke run is deterministic and no guard fired;
1 otherwise.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "NondeterminismError",
    "assert_ordered",
    "decision_guards",
    "hashseed_problem",
    "run_smoke",
    "run_static_precheck",
    "main",
]

#: Container types whose iteration order depends on PYTHONHASHSEED.
_UNORDERED_TYPES: Tuple[type, ...] = (
    set,
    frozenset,
    type({}.keys()),
    type({}.values()),
    type({}.items()),
)


class NondeterminismError(AssertionError):
    """A decision-path entry point was handed an unordered container."""


def hashseed_problem() -> Optional[str]:
    """Explain what's wrong with ``PYTHONHASHSEED``, or ``None`` if fine."""
    value = os.environ.get("PYTHONHASHSEED")
    if value is None:
        return ("PYTHONHASHSEED is not set — hash order varies per process; "
                "export PYTHONHASHSEED=0 for the smoke run")
    if value == "random":
        return "PYTHONHASHSEED=random explicitly requests nondeterminism"
    return None


def assert_ordered(value: Any, where: str) -> None:
    """Raise :class:`NondeterminismError` if ``value`` is hash-ordered."""
    if isinstance(value, _UNORDERED_TYPES):
        raise NondeterminismError(
            f"{where} received a {type(value).__name__} — iteration order "
            f"depends on PYTHONHASHSEED; pass an explicitly ordered "
            f"sequence (list/tuple, ideally sorted)")


class decision_guards:
    """Context manager wrapping hot decision-path entry points.

    Patches :mod:`repro.core.victim` plus the names
    :mod:`repro.core.engine` and :mod:`repro.core.cache_manager` bound
    at import time, so guarded wrappers are hit regardless of which
    module the caller resolved the function through.
    """

    _GUARDED = ("get_victim", "fallback_victim", "selection_state")

    def __init__(self) -> None:
        self._saved: List[Tuple[Any, str, Callable[..., Any]]] = []
        #: Number of calls that passed through the guards (smoke-run
        #: evidence that the guarded paths actually executed).
        self.calls = 0

    def _wrap(self, name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def guarded(entities: Any, *args: Any, **kwargs: Any) -> Any:
            assert_ordered(entities, f"{name}(entities=...)")
            self.calls += 1
            return fn(entities, *args, **kwargs)

        return guarded

    def __enter__(self) -> "decision_guards":
        from ..core import cache_manager, engine, victim

        wrappers = {name: self._wrap(name, getattr(victim, name))
                    for name in self._GUARDED}
        for module in (victim, engine, cache_manager):
            for name, wrapper in wrappers.items():
                if hasattr(module, name):
                    self._saved.append((module, name, getattr(module, name)))
                    setattr(module, name, wrapper)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        while self._saved:
            module, name, original = self._saved.pop()
            setattr(module, name, original)


def run_smoke(
    experiment: str = "caching_modes",
    scale: float = 0.02,
    seed: int = 42,
    require_hashseed: bool = True,
    out: Callable[[str], None] = print,
) -> int:
    """Guarded, double-run determinism smoke; returns a process exit code."""
    problem = hashseed_problem() if require_hashseed else None
    if problem is not None:
        out(f"sanitize: FAIL — {problem}")
        return 1

    from ..experiments import ALL_EXPERIMENTS

    if experiment not in ALL_EXPERIMENTS:
        out(f"sanitize: unknown experiment {experiment!r} "
            f"(choose from {', '.join(sorted(ALL_EXPERIMENTS))})")
        return 1
    cls = ALL_EXPERIMENTS[experiment]

    summaries: List[str] = []
    with decision_guards() as guards:
        for round_no in (1, 2):
            try:
                result = cls(scale=scale, seed=seed).run()
            except NondeterminismError as exc:
                out(f"sanitize: FAIL — decision-path guard fired on round "
                    f"{round_no}: {exc}")
                return 1
            summaries.append(result.summary(plots=False))

    if guards.calls == 0:
        out("sanitize: FAIL — the guarded decision paths never executed; "
            "the smoke scenario is too small to exercise eviction")
        return 1
    if summaries[0] != summaries[1]:
        first, second = summaries[0].splitlines(), summaries[1].splitlines()
        diverging = next(
            (i for i, (a, b) in enumerate(zip(first, second)) if a != b),
            min(len(first), len(second)))
        out(f"sanitize: FAIL — fixed-seed double run diverged at output "
            f"line {diverging + 1}; module-global state is leaking between "
            f"runs or hash order reached a decision")
        return 1
    out(f"sanitize: OK — {experiment} at scale {scale} seed {seed}: "
        f"{guards.calls} guarded victim selections, double-run output "
        f"byte-identical ({len(summaries[0])} bytes)")
    return 0


def run_static_precheck(out: Callable[[str], None] = print) -> int:
    """Whole-program static pass over the installed ``repro`` tree.

    Returns 0 when DD011–DD014 report nothing (the same analyzers the
    ``--interprocedural`` CI gate runs); 1 with the findings printed
    otherwise.  Static findings fail fast: no point timing a runtime
    smoke around a taint path the call graph already proves.
    """
    from pathlib import Path

    import repro

    from .analysis import analyze_paths
    from .engine import format_findings_text

    package_root = Path(repro.__file__).resolve().parent
    report = analyze_paths([package_root])
    for note in report.notes:
        out(f"sanitize: note: {note}")
    if report.findings:
        out(format_findings_text(report.findings))
        out(f"sanitize: FAIL — {len(report.findings)} whole-program static "
            f"finding(s); fix or justify-suppress them before smoke-running")
        return 1
    out("sanitize: static interprocedural pre-pass clean (DD011–DD014)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.sanitize",
        description="runtime nondeterminism sanitizer (static whole-program "
                    "pre-pass, then a guarded double-run smoke with "
                    "PYTHONHASHSEED discipline)",
    )
    parser.add_argument("--experiment", default="caching_modes",
                        help="experiment to smoke-run (default: caching_modes)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="experiment scale (default: 0.02)")
    parser.add_argument("--seed", type=int, default=42,
                        help="fixed seed for both rounds (default: 42)")
    parser.add_argument("--no-hashseed-check", action="store_true",
                        help="skip the PYTHONHASHSEED discipline assertion")
    parser.add_argument("--no-static", action="store_true",
                        help="skip the static interprocedural pre-pass")
    args = parser.parse_args(argv)
    if not args.no_static:
        status = run_static_precheck()
        if status:
            return status
    return run_smoke(
        experiment=args.experiment,
        scale=args.scale,
        seed=args.seed,
        require_hashseed=not args.no_hashseed_check,
    )


if __name__ == "__main__":
    sys.exit(main())
