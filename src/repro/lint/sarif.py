"""SARIF 2.1.0 output for sim-lint findings.

Static Analysis Results Interchange Format, the shape code-scanning
UIs ingest: one ``run`` with a ``tool.driver`` carrying the full rule
catalog (per-file and whole-program) and one ``result`` per finding.
Witness paths (DD011's source→sink chain, DD012's load/await/store
triple) are emitted as ``codeFlows``/``threadFlows`` so viewers render
the hop-by-hop evidence, not just the anchor line.

Only the stdlib is used; the emitted document's shape is self-checked by
``tests/test_lint_analysis.py`` against the SARIF 2.1.0 requirements the
spec makes mandatory (``version``, ``$schema``, ``runs[].tool.driver``
with ``name`` and ``rules[].id``, ``results[].ruleId/message/locations``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "format_findings_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL_OF = {"error": "error", "warning": "warning"}


def _location(path: str, line: int, col: int) -> Dict[str, object]:
    region: Dict[str, object] = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> Dict[str, object]:
    return {
        "threadFlows": [{
            "locations": [
                {
                    "location": {
                        **_location(hop.path, hop.line, 0),
                        "message": {"text": hop.note},
                    }
                }
                for hop in finding.witness
            ]
        }]
    }


def format_findings_sarif(findings: Sequence[Finding]) -> str:
    from .rules import rule_catalog

    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for entry in rule_catalog():
        rule_index[entry["id"]] = len(rules)
        rules.append({
            "id": entry["id"],
            "shortDescription": {"text": entry["title"]},
            "fullDescription": {"text": entry["rationale"]},
            "defaultConfiguration": {
                "level": _LEVEL_OF.get(entry["severity"], "warning")},
            "properties": {
                "scope": entry["scope"],
                "witnessFormat": entry["witness"],
            },
        })
    # DD000 is a pseudo-rule emitted by the engine, not the catalog.
    if "DD000" not in rule_index:
        rule_index["DD000"] = len(rules)
        rules.append({
            "id": "DD000",
            "shortDescription": {"text": "dd-lint pragma defect"},
            "defaultConfiguration": {"level": "warning"},
        })

    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": _LEVEL_OF.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        if finding.witness:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)

    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "sim-lint",
                    "rules": rules,
                }
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
