"""``repro.lint`` — the determinism & invariant static-analysis suite.

Every guarantee this reproduction makes (byte-identical ``--jobs``
fan-out, fixed-seed fingerprints, exact ledger replay in ``repro.obs``,
the shadow-accounting auditor) depends on code discipline that nothing
enforced mechanically until this suite: no wall-clock reads in simulated
paths, no unseeded module-global randomness, no unordered iteration
feeding Algorithm 1 victim selection, no float drift in integer
accounting counters.  ``sim-lint`` defends those properties the way the
auditor defends accounting: with tooling, not reviewer vigilance.

Three entry points:

* ``python -m repro.lint [paths] [--strict]`` — the AST pass (rules
  DD001..DD008 plus the TC001 typed-core gate); see :mod:`repro.lint.rules`.
* ``python -m repro.lint.sanitize`` — the *runtime* nondeterminism
  sanitizer: asserts ``PYTHONHASHSEED`` discipline, wraps hot
  decision-path entry points so unordered containers are rejected at the
  call boundary, and double-runs a smoke scenario comparing fingerprints
  byte-for-byte.
* :func:`repro.lint.typed.run_mypy` — shells out to the scoped strict
  ``mypy`` gate when mypy is installed (CI), and reports "skipped"
  rather than failing when it is not (hermetic containers).

Suppressions are inline and must be justified::

    started = time.time()  # dd-lint: disable=DD001 (host-side wall clock, not simulated time)

See ``docs/LINTING.md`` for the rule catalog and how to add a rule.
"""

from .engine import (
    Finding,
    LintContext,
    Rule,
    SuppressionTable,
    format_findings_json,
    format_findings_text,
    iter_python_files,
    lint_file,
    lint_paths,
)
from .rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "SuppressionTable",
    "format_findings_json",
    "format_findings_text",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "rule_catalog",
]
