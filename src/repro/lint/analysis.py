"""Whole-program analysis orchestration (rules DD011–DD014).

This is the entry point the CLI, the runtime sanitizer, and the tests
share.  :func:`analyze_paths` loads every ``repro``-tree file reachable
from the given paths into one :class:`~repro.lint.callgraph.Project`,
builds the call graph once, runs the four analyzers, and filters the
results through the same ``dd-lint`` suppression tables the per-file
engine parsed (one pragma parser, one semantics).

The four rules:

* **DD011** — interprocedural nondeterminism taint (:mod:`repro.lint.taint`);
* **DD012** — await-interleaving races (:mod:`repro.lint.asyncsafe`);
* **DD013** — sim-kernel generator-protocol misuse, checked here against
  the call graph's generator-valuedness fixed point: ``yield gen_fn(...)``
  parks a process on a generator object instead of an event (use
  ``yield from``), and a bare ``gen_fn(...)`` statement discards the
  generator so its body never runs;
* **DD014** — auditor coverage: every monotone ledger counter declared in
  ``repro.core.stats`` (``int`` dataclass fields defaulting to ``0``,
  excluding point-in-time gauges) must be referenced by at least one
  invariant in ``repro.core.audit``.  The check is name-based on the
  auditor's attribute reads and string constants — object-insensitive by
  design, cheap, and exactly strong enough to catch a counter nobody
  reconciles.

Rules degrade gracefully on partial projects: linting a subtree that
lacks ``repro.core.stats``/``repro.core.audit`` skips DD014 with a note
rather than failing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .asyncsafe import analyze_asyncsafe
from .callgraph import CallGraph, Project, own_nodes
from .engine import Finding, WitnessHop, iter_python_files
from .rules import INTERPROC_RULES, REALTIME_MODULES

__all__ = [
    "AnalysisReport",
    "WHOLE_PROGRAM_RULE_IDS",
    "analyze_paths",
    "analyze_project",
]

WHOLE_PROGRAM_RULE_IDS: Tuple[str, ...] = tuple(
    rule.rule_id for rule in INTERPROC_RULES)

#: Stats fields that are point-in-time gauges, not monotone ledger
#: counters — re-derived on every snapshot, so "no auditor cross-check"
#: is the wrong question for them.
GAUGE_FIELD_RE = re.compile(
    r"used_blocks|capacity_blocks|entitlement", re.IGNORECASE)

_STATS_MODULE_SUFFIX = "core.stats"
_AUDIT_MODULE_SUFFIX = "core.audit"


@dataclass
class AnalysisReport:
    """Findings plus human-readable notes about analysis scope."""

    findings: List[Finding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


def _module_tail(rel: str) -> str:
    marker = "repro/"
    idx = rel.rfind(marker)
    return rel[idx + len(marker):] if idx >= 0 else rel


def _is_realtime_rel(rel: str) -> bool:
    tail = _module_tail(rel)
    return any(tail.startswith(prefix) if prefix.endswith("/")
               else tail == prefix for prefix in REALTIME_MODULES)


# -- DD013: generator-protocol misuse ---------------------------------------

def _check_generator_protocol(project: Project, graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for func in project.functions.values():
        if _is_realtime_rel(func.rel):
            continue
        for node in own_nodes(func.node):
            call: Optional[ast.Call] = None
            kind = ""
            if (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                call = node.value
                kind = "discard"
            elif (isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)):
                call = node.value
                kind = "yield"
            if call is None:
                continue
            callee = graph.resolve_call(func, call)
            if callee is None or not graph.is_generator_valued(callee):
                continue
            callee_info = project.functions[callee]
            if kind == "yield":
                message = (
                    f"'{func.qual}' yields the generator object from "
                    f"'{callee}' into the sim kernel — the kernel expects "
                    f"events; delegate with 'yield from {callee_info.name}"
                    f"(...)' instead")
            else:
                message = (
                    f"'{func.qual}' calls generator '{callee}' as a bare "
                    f"statement and discards the result — the body never "
                    f"runs; drive it with 'yield from' or iterate it")
            findings.append(Finding(
                rule_id="DD013", severity="error", path=func.rel,
                line=call.lineno, col=call.col_offset, message=message,
                witness=(WitnessHop(
                    callee_info.rel,
                    getattr(callee_info.node, "lineno", 1),
                    f"'{callee}' is generator-valued (defined here)"),),
            ))
    return findings


# -- DD014: auditor coverage of ledger counters ------------------------------

def _counter_fields(stats_tree: ast.AST) -> List[Tuple[str, str, int]]:
    """``(class, field, line)`` for every monotone counter field."""
    fields: List[Tuple[str, str, int]] = []
    for node in ast.walk(stats_tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            annotation = stmt.annotation
            is_int = (isinstance(annotation, ast.Name)
                      and annotation.id == "int")
            has_zero_default = (isinstance(stmt.value, ast.Constant)
                                and stmt.value.value == 0)
            if not (is_int and has_zero_default):
                continue
            if GAUGE_FIELD_RE.search(stmt.target.id):
                continue
            fields.append((node.name, stmt.target.id, stmt.lineno))
    return fields


def _referenced_names(audit_tree: ast.AST) -> Set[str]:
    """Attribute names and identifier-shaped string constants the
    auditor touches — the (object-insensitive) evidence that a counter
    participates in at least one invariant."""
    names: Set[str] = set()
    for node in ast.walk(audit_tree):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.isidentifier():
                names.add(node.value)
    return names


def _check_audit_coverage(project: Project, notes: List[str]) -> List[Finding]:
    stats_mod = None
    audit_mod = None
    for module in project.modules.values():
        if module.name.endswith(_STATS_MODULE_SUFFIX):
            stats_mod = module
        elif module.name.endswith(_AUDIT_MODULE_SUFFIX):
            audit_mod = module
    if stats_mod is None or audit_mod is None:
        notes.append(
            "DD014 skipped: core/stats.py and core/audit.py are not both "
            "in the analyzed set")
        return []
    referenced = _referenced_names(audit_mod.tree)
    findings: List[Finding] = []
    for cls_name, field_name, line in _counter_fields(stats_mod.tree):
        if field_name in referenced:
            continue
        findings.append(Finding(
            rule_id="DD014", severity="error", path=stats_mod.rel,
            line=line, col=0,
            message=(
                f"ledger counter '{cls_name}.{field_name}' has no auditor "
                f"cross-check — no invariant in {audit_mod.rel} references "
                f"it, so drift in it is invisible to shadow accounting"),
            witness=(WitnessHop(
                stats_mod.rel, line,
                f"counter field '{field_name}' declared here"),),
        ))
    return findings


# -- orchestration -----------------------------------------------------------

def analyze_project(
    project: Project,
    rule_ids: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the whole-program analyzers over a loaded project."""
    wanted = set(rule_ids) if rule_ids is not None else set(WHOLE_PROGRAM_RULE_IDS)
    report = AnalysisReport()
    report.notes.append(
        f"interprocedural: analyzed {len(project.modules)} module(s), "
        f"{len(project.functions)} function(s)")
    report.notes.extend(project.notes)
    graph = CallGraph(project)
    findings: List[Finding] = []
    if "DD011" in wanted:
        from .taint import analyze_taint

        findings.extend(analyze_taint(project, graph))
    if "DD012" in wanted:
        findings.extend(analyze_asyncsafe(project))
    if "DD013" in wanted:
        findings.extend(_check_generator_protocol(project, graph))
    if "DD014" in wanted:
        findings.extend(_check_audit_coverage(project, report.notes))
    report.findings = _apply_suppressions(project, findings)
    report.findings.sort(key=Finding.sort_key)
    return report


def _apply_suppressions(
    project: Project, findings: Sequence[Finding]
) -> List[Finding]:
    """Filter through the same per-file tables the engine parsed."""
    kept: List[Finding] = []
    for finding in findings:
        ctx = project.contexts.get(finding.path)
        if ctx is not None and ctx.suppressions.suppresses(finding):
            continue
        kept.append(finding)
    return kept


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Load every ``repro``-tree file under ``paths`` and analyze it."""
    files = list(iter_python_files(paths))
    project = Project.load(files, root=root)
    return analyze_project(project, rule_ids=rule_ids)
