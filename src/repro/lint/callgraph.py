"""Project-wide call graph over the ``repro`` package (zero dependencies).

The whole-program analyzers (:mod:`repro.lint.taint`,
:mod:`repro.lint.analysis`) need to follow a value *through* helpers:
``select_victim()`` calling ``jitter()`` in another module must become an
edge, or interprocedural taint is blind.  This module builds that graph
from nothing but the stdlib ``ast``:

* :class:`Project` — parses every file whose path contains a ``repro/``
  component, derives its dotted module name from the path (so the same
  loader serves ``src/repro`` and the fixture mini-projects under
  ``tests/lint_fixtures``), and records per-module import tables,
  top-level functions, and classes with their methods.
* :class:`CallGraph` — resolves each call site to a fully-qualified
  function (``module:Class.method`` / ``module:func``) using, in order:
  local definitions, ``from x import y as z`` member aliases, module
  aliases (``import repro.core.victim as v`` and dotted absolute names),
  ``self.method`` dispatch through the static base-class chain, a
  receiver-name heuristic (``tracker.curve()`` resolves when a class
  named like the receiver defines the method), and finally a
  unique-name fallback (an attribute call resolves if exactly one class
  in the whole project defines a method of that name).

Resolution is deliberately *under*-approximate: an ambiguous call site
produces no edge (a documented false-negative class) rather than a
spurious one, so taint findings stay actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import LintContext, load_context

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "own_nodes",
]


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s.

    Lambdas and comprehensions stay in (they run as part of the function);
    nested function/class definitions do not (their bodies run later, on
    their own activation), so a ``yield`` inside a nested generator must
    not make the *outer* function look like a generator.
    """
    stack: List[ast.AST] = [func]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        first = False
        yield node
        stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


@dataclass(frozen=True)
class ImportTarget:
    """What one locally-bound name refers to."""

    module: str               # dotted absolute module, e.g. "repro.core.victim"
    member: Optional[str]     # None: the name is bound to the module itself


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qual: str                 # "module:func" or "module:Class.method"
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST             # FunctionDef | AsyncFunctionDef
    rel: str                  # file path as reported in findings
    is_async: bool
    has_yield: bool


@dataclass
class ClassInfo:
    name: str
    bases: List[str] = field(default_factory=list)   # as written ("Rule", "m.Rule")
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str                 # dotted, e.g. "repro.core.victim"
    rel: str
    path: Path
    tree: ast.Module
    source: str
    is_package: bool
    imports: Dict[str, ImportTarget] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _module_name_for(rel: str) -> Optional[Tuple[str, bool]]:
    """Dotted module name derived from the last ``repro/`` path marker.

    Returns ``(name, is_package)`` or ``None`` for files outside any
    ``repro`` tree (tests, benchmarks) — those are linted per-file but
    take no part in whole-program analysis.
    """
    parts = rel.split("/")
    try:
        idx = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    tail = parts[idx:]
    stem = tail[-1][:-3] if tail[-1].endswith(".py") else tail[-1]
    if stem == "__init__":
        return ".".join(tail[:-1]), True
    return ".".join(tail[:-1] + [stem]), False


class Project:
    """Parsed modules of one (or several merged) ``repro`` trees."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.notes: List[str] = []
        #: rel path -> LintContext (shared suppression tables).
        self.contexts: Dict[str, LintContext] = {}

    @classmethod
    def load(cls, files: Sequence[Path], root: Optional[Path] = None) -> "Project":
        project = cls()
        for path in files:
            ctx = load_context(path, root=root)
            if ctx is None:       # unreadable / syntax error: per-file lint reports it
                continue
            named = _module_name_for(ctx.rel)
            if named is None:
                continue
            name, is_package = named
            if name in project.modules:
                project.notes.append(
                    f"module name collision: {ctx.rel} shadows "
                    f"{project.modules[name].rel} as {name!r}; first wins"
                )
                continue
            module = ModuleInfo(
                name=name, rel=ctx.rel, path=path, tree=ctx.tree,  # type: ignore[arg-type]
                source="\n".join(ctx.lines), is_package=is_package,
            )
            project.contexts[ctx.rel] = ctx
            project.modules[name] = module
        for module in project.modules.values():
            project._index_module(module)
        return project

    # -- per-module indexing -------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        module.imports[local] = ImportTarget(alias.name, None)
                    else:
                        # ``import repro.core.victim`` binds ``repro``; dotted
                        # call receivers are matched against full module
                        # names directly, so only record the root package.
                        module.imports.setdefault(
                            local, ImportTarget(alias.name.split(".")[0], None))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.modules:
                        module.imports[local] = ImportTarget(submodule, None)
                    else:
                        module.imports[local] = ImportTarget(base, alias.name)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[stmt.name] = self._function_info(module, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(name=stmt.name)
                for base in stmt.bases:
                    name = dotted_name(base)
                    if name is not None:
                        info.bases.append(name)
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[member.name] = self._function_info(
                            module, stmt.name, member)
                module.classes[stmt.name] = info
        for func in module.functions.values():
            self.functions[func.qual] = func
        for cls_info in module.classes.values():
            for func in cls_info.methods.values():
                self.functions[func.qual] = func

    def _function_info(
        self, module: ModuleInfo, cls: Optional[str], node: ast.AST
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qual = (f"{module.name}:{cls}.{name}" if cls
                else f"{module.name}:{name}")
        has_yield = any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes(node))
        return FunctionInfo(
            qual=qual, module=module.name, cls=cls, name=name, node=node,
            rel=module.rel, is_async=isinstance(node, ast.AsyncFunctionDef),
            has_yield=has_yield,
        )

    def _resolve_import_from(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        pkg_parts = module.name.split(".")
        if not module.is_package:
            pkg_parts = pkg_parts[:-1]
        cut = node.level - 1
        if cut > 0:
            pkg_parts = pkg_parts[:-cut] if cut < len(pkg_parts) else []
        if not pkg_parts:
            return node.module
        if node.module:
            return ".".join(pkg_parts + node.module.split("."))
        return ".".join(pkg_parts)


#: Methods of builtin containers / IO objects: attribute calls with these
#: names are far more often ``list.append`` than a project method, so the
#: unique-name heuristic refuses to guess for them.
_BUILTIN_METHOD_NAMES: Set[str] = set()
for _builtin in (list, dict, set, frozenset, tuple, str, bytes, bytearray,
                 int, float, complex):
    _BUILTIN_METHOD_NAMES.update(
        name for name in dir(_builtin) if not name.startswith("__"))
_BUILTIN_METHOD_NAMES.update({"read", "write", "close", "flush", "readline",
                              "readlines", "seek", "tell", "get", "put"})


@dataclass(frozen=True)
class CallEdge:
    caller: str               # qual
    callee: str               # qual
    line: int


class CallGraph:
    """Resolved call edges plus derived generator-valuedness."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, List[CallEdge]] = {}
        #: method name -> quals of every class method with that name.
        self._methods_by_name: Dict[str, List[str]] = {}
        self._generator_valued: Set[str] = set()
        self._build_method_index()
        self._build_edges()
        self._close_generator_valued()

    # -- construction ---------------------------------------------------

    def _build_method_index(self) -> None:
        for module in self.project.modules.values():
            for cls in module.classes.values():
                for name, func in cls.methods.items():
                    self._methods_by_name.setdefault(name, []).append(func.qual)

    def _build_edges(self) -> None:
        for func in self.project.functions.values():
            edges: List[CallEdge] = []
            for node in own_nodes(func.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(func, node)
                if callee is not None:
                    edges.append(CallEdge(func.qual, callee, node.lineno))
            self.edges[func.qual] = edges

    def _close_generator_valued(self) -> None:
        """Fixed point: a function is generator-valued if it yields, or
        every-so-flat wrapper style ``return other()`` where ``other`` is
        generator-valued (the flattened-delegation idiom from the event
        kernel refactor)."""
        valued = {q for q, f in self.project.functions.items() if f.has_yield}
        return_calls: Dict[str, List[str]] = {}
        for qual, func in self.project.functions.items():
            calls: List[str] = []
            for node in own_nodes(func.node):
                if (isinstance(node, ast.Return)
                        and isinstance(node.value, ast.Call)):
                    callee = self.resolve_call(func, node.value)
                    if callee is not None:
                        calls.append(callee)
            return_calls[qual] = calls
        changed = True
        while changed:
            changed = False
            for qual, calls in return_calls.items():
                if qual not in valued and any(c in valued for c in calls):
                    valued.add(qual)
                    changed = True
        self._generator_valued = valued

    # -- queries --------------------------------------------------------

    def is_generator_valued(self, qual: str) -> bool:
        return qual in self._generator_valued

    def callees_of(self, qual: str) -> List[CallEdge]:
        return self.edges.get(qual, [])

    # -- call-site resolution -------------------------------------------

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Fully-qualified callee for one call site, or ``None``."""
        module = self.project.modules.get(caller.module)
        if module is None:
            return None
        target = call.func
        if isinstance(target, ast.Name):
            return self._resolve_name_call(module, target.id)
        if isinstance(target, ast.Attribute):
            return self._resolve_attribute_call(module, caller, target)
        return None

    def _resolve_name_call(self, module: ModuleInfo, name: str) -> Optional[str]:
        func = module.functions.get(name)
        if func is not None:
            return func.qual
        cls = module.classes.get(name)
        if cls is not None:
            init = self._lookup_method(module, name, "__init__")
            return init.qual if init is not None else None
        imp = module.imports.get(name)
        if imp is not None and imp.member is not None:
            target_mod = self.project.modules.get(imp.module)
            if target_mod is not None:
                return self._resolve_name_call(target_mod, imp.member)
        return None

    def _resolve_attribute_call(
        self, module: ModuleInfo, caller: FunctionInfo, target: ast.Attribute
    ) -> Optional[str]:
        receiver = dotted_name(target.value)
        method = target.attr
        if receiver == "self" and caller.cls is not None:
            found = self._lookup_method(module, caller.cls, method)
            if found is not None:
                return found.qual
            return self._heuristic_method(method, receiver=None)
        if receiver is not None:
            resolved_mod = self._receiver_module(module, receiver)
            if resolved_mod is not None:
                return self._resolve_name_call(resolved_mod, method)
            head = receiver.split(".")[-1]
            return self._heuristic_method(method, receiver=head)
        return self._heuristic_method(method, receiver=None)

    def _receiver_module(
        self, module: ModuleInfo, receiver: str
    ) -> Optional[ModuleInfo]:
        """Receiver chain naming a module: alias, or dotted absolute."""
        parts = receiver.split(".")
        imp = module.imports.get(parts[0])
        if imp is not None and imp.member is None:
            expanded = ".".join([imp.module] + parts[1:])
            if expanded in self.project.modules:
                return self.project.modules[expanded]
            # ``import repro.core.victim`` + receiver ``repro.core.victim``
        if receiver in self.project.modules:
            return self.project.modules[receiver]
        return None

    def _lookup_method(
        self, module: ModuleInfo, cls_name: str, method: str,
        _seen: Optional[Set[str]] = None,
    ) -> Optional[FunctionInfo]:
        """Static MRO walk: the class, then written bases, recursively."""
        seen = _seen if _seen is not None else set()
        key = f"{module.name}:{cls_name}"
        if key in seen:
            return None
        seen.add(key)
        cls = module.classes.get(cls_name)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            base_mod, base_cls = self._resolve_class_ref(module, base)
            if base_mod is None or base_cls is None:
                continue
            found = self._lookup_method(base_mod, base_cls, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_class_ref(
        self, module: ModuleInfo, ref: str
    ) -> Tuple[Optional[ModuleInfo], Optional[str]]:
        parts = ref.split(".")
        if len(parts) == 1:
            if ref in module.classes:
                return module, ref
            imp = module.imports.get(ref)
            if imp is not None and imp.member is not None:
                return self.project.modules.get(imp.module), imp.member
            return None, None
        receiver_mod = self._receiver_module(module, ".".join(parts[:-1]))
        return receiver_mod, parts[-1]

    def _heuristic_method(
        self, method: str, receiver: Optional[str]
    ) -> Optional[str]:
        """Dispatch heuristics for attribute calls on unknown receivers.

        The unique-name fallback is gated on the method name not
        colliding with a builtin-container/file method: ``rows.append``
        must never resolve to some class's generator-valued ``append``
        just because it is the only *project* method of that name.  A
        receiver whose name matches the defining class still resolves
        (``container.append`` → ``Container.append``): that is a typed
        receiver in all but syntax.
        """
        options = self._methods_by_name.get(method, [])
        if not options:
            return None
        if receiver is not None:
            want = receiver.lstrip("_").replace("_", "").lower()
            by_class = [
                qual for qual in options
                if qual.split(":")[1].split(".")[0].lower() == want
            ]
            if len(by_class) == 1:
                return by_class[0]
        if method in _BUILTIN_METHOD_NAMES:
            return None
        if len(options) == 1:
            return options[0]
        return None
