"""sim-lint rule catalog: DD001..DD010.

Each rule defends one determinism or invariant property the reproduction
relies on (see docs/LINTING.md for the full catalog with examples):

* DD001 — wall-clock reads in simulated paths;
* DD002 — unseeded module-global ``random`` use;
* DD003 — unordered iteration feeding eviction/victim/migration decisions;
* DD004 — float accumulation into integer accounting counters;
* DD005 — mutable default arguments;
* DD006 — tracer calls missing the ``if tracer is not None`` zero-cost guard;
* DD007 — bare/swallowed exception handlers;
* DD008 — stats-counter writes that bypass the put-outcome ledger;
* DD009 — linear-time list operations in hot-path modules;
* DD010 — blocking calls inside ``async def`` bodies in the live service.

The TC001 typed-core gate (annotation completeness over
``repro.core.victim`` / ``repro.core.radix``) is registered alongside
these; it lives in :mod:`repro.lint.typed`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, LintContext, Rule

__all__ = ["ALL_RULES", "INTERPROC_RULES", "rule_catalog", "DECISION_NAME_RE"]


# -- shared AST helpers ------------------------------------------------------

def _parents(tree: ast.AST) -> Dict[int, ast.AST]:
    """Map ``id(child) -> parent`` for every node in ``tree``."""
    table: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            table[id(child)] = node
    return table


def _ancestors(node: ast.AST, parents: Dict[int, ast.AST]) -> Iterator[ast.AST]:
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _import_aliases(tree: ast.AST, module: str) -> Tuple[Set[str], Dict[str, str]]:
    """Names bound to ``module`` itself, and ``local -> original`` for
    names imported *from* it."""
    module_aliases: Set[str] = set()
    member_aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                member_aliases[alias.asname or alias.name] = alias.name
    return module_aliases, member_aliases


# -- DD001 -------------------------------------------------------------------

_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime",
}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today", "utcfromtimestamp"}

#: Wall-clock-native module prefixes: the cache *service* and the live
#: telemetry plane live on real time and real sockets by design, so the
#: determinism rules that protect simulated fingerprints (DD001) and the
#: kernel's failure surfacing (DD007) do not apply there.  Everything
#: else in ``repro/`` stays under the strict regime.  These modules get
#: their own rule instead: DD010 polices their event loop.
REALTIME_MODULES = ("service/", "obs/live.py")


def _in_realtime_module(ctx: LintContext) -> bool:
    return ctx.module_tail().startswith(REALTIME_MODULES)


class WallClockRule(Rule):
    rule_id = "DD001"
    title = "wall-clock read in simulated code"
    rationale = (
        "Simulated paths must read time from Environment.now only; a "
        "host wall-clock read perturbs fixed-seed fingerprints and "
        "breaks byte-identical --jobs fan-out."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code or _in_realtime_module(ctx):
            return
        time_mods, time_members = _import_aliases(ctx.tree, "time")
        dt_mods, dt_members = _import_aliases(ctx.tree, "datetime")
        dt_classes = {local for local, orig in dt_members.items()
                      if orig in ("datetime", "date")}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                origin = time_members.get(func.id)
                if origin in _WALL_CLOCK_TIME_FNS:
                    yield self.finding(
                        ctx, node,
                        f"call to time.{origin}() — simulated code must use "
                        f"Environment.now, never the host wall clock")
                continue
            if not isinstance(func, ast.Attribute):
                continue
            recv = _dotted(func.value)
            if recv in time_mods and func.attr in _WALL_CLOCK_TIME_FNS:
                yield self.finding(
                    ctx, node,
                    f"call to {recv}.{func.attr}() — simulated code must use "
                    f"Environment.now, never the host wall clock")
            elif func.attr in _WALL_CLOCK_DATETIME_FNS:
                base = recv.split(".", 1)[0] if recv else None
                if recv in dt_classes or (base in dt_mods) or (
                        recv is not None and "." in recv
                        and recv.split(".")[-1] in ("datetime", "date")
                        and base in dt_mods | dt_classes):
                    yield self.finding(
                        ctx, node,
                        f"call to {recv}.{func.attr}() — wall-clock datetime "
                        f"reads are nondeterministic in simulated paths")


# -- DD002 -------------------------------------------------------------------

class UnseededRandomRule(Rule):
    rule_id = "DD002"
    title = "module-global random use"
    rationale = (
        "The module-global random generator is shared, unseeded process "
        "state; use an explicitly seeded random.Random(seed) (or "
        "repro.simkernel.rng) so every stream is reproducible."
    )

    #: The only member of the random module that is fine to name: an
    #: explicitly seeded generator instance.
    _ALLOWED = {"Random"}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        mods, members = _import_aliases(ctx.tree, "random")
        if not mods and not members:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                recv = _dotted(func.value)
                if recv in mods and func.attr not in self._ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"call to {recv}.{func.attr}() uses the module-global "
                        f"generator — construct random.Random(seed) instead")
            elif isinstance(func, ast.Name):
                origin = members.get(func.id)
                if origin is not None and origin not in self._ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"call to random.{origin}() (imported bare) uses the "
                        f"module-global generator — construct "
                        f"random.Random(seed) instead")


# -- DD003 -------------------------------------------------------------------

#: Function/class names considered part of the decision path: anything
#: that picks victims, enumerates eviction candidates, migrates blocks,
#: rebalances entitlements, or admits writes.
DECISION_NAME_RE = re.compile(
    r"evict|victim|migrat|candidat|select|admit|balanc|reclaim|trickle"
    r"|shrink|make_room|entitle",
    re.IGNORECASE,
)

_SET_CALLS = {"set", "frozenset"}


class UnorderedDecisionIterationRule(Rule):
    rule_id = "DD003"
    title = "unordered iteration in a decision path"
    rationale = (
        "Iterating a set (hash order) where the elements flow into "
        "eviction/victim/migration decisions makes the victim depend on "
        "PYTHONHASHSEED; wrap the iterable in sorted() or justify "
        "insertion order with a suppression."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code:
            return
        parents = _parents(ctx.tree)
        set_attrs = self._set_valued_attrs(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            else:
                continue
            if not self._in_decision_context(node, parents):
                continue
            local_sets = self._set_valued_locals(node, parents)
            for expr in iters:
                for finding in self._check_iter(ctx, expr, local_sets, set_attrs):
                    yield finding

    def _in_decision_context(self, node: ast.AST,
                             parents: Dict[int, ast.AST]) -> bool:
        for ancestor in _ancestors(node, parents):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                if DECISION_NAME_RE.search(ancestor.name):
                    return True
        return False

    @staticmethod
    def _enclosing_function(node: ast.AST, parents: Dict[int, ast.AST]
                            ) -> Optional[ast.AST]:
        for ancestor in _ancestors(node, parents):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def _set_valued_locals(self, node: ast.AST,
                           parents: Dict[int, ast.AST]) -> Set[str]:
        """Local names assigned a set in the enclosing function."""
        func = self._enclosing_function(node, parents)
        if func is None:
            return set()
        names: Set[str] = set()
        for stmt in ast.walk(func):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _set_valued_attrs(tree: ast.AST) -> Set[str]:
        """``self.X`` attribute names assigned a set anywhere in the file."""
        attrs: Set[str] = set()
        for stmt in ast.walk(tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not UnorderedDecisionIterationRule._is_set_expr(value):
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
        return attrs

    @staticmethod
    def _is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in _SET_CALLS
        return False

    def _check_iter(self, ctx: LintContext, expr: ast.expr,
                    local_sets: Set[str], set_attrs: Set[str]
                    ) -> Iterator[Finding]:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "sorted":
            return  # explicitly ordered — the sanctioned fix
        if self._is_set_expr(expr):
            yield self.finding(
                ctx, expr,
                "iteration over a set inside a decision-path function — "
                "hash order leaks into victim selection; wrap in sorted()")
        elif isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "keys" and not expr.args:
            yield self.finding(
                ctx, expr,
                "iteration over dict.keys() inside a decision-path function — "
                "insertion order is deterministic but order-sensitivity must "
                "be explicit; wrap in sorted() or justify with a suppression",
                severity="warning")
        elif isinstance(expr, ast.Name) and expr.id in local_sets:
            yield self.finding(
                ctx, expr,
                f"iteration over local set {expr.id!r} inside a decision-path "
                f"function — hash order leaks into victim selection; wrap in "
                f"sorted()")
        elif (isinstance(expr, ast.Attribute)
              and isinstance(expr.value, ast.Name)
              and expr.value.id == "self" and expr.attr in set_attrs):
            yield self.finding(
                ctx, expr,
                f"iteration over set-valued attribute self.{expr.attr} inside "
                f"a decision-path function — hash order leaks into victim "
                f"selection; wrap in sorted()")


# -- DD004 -------------------------------------------------------------------

_COUNTER_EXACT = {
    "used", "_size", "count", "used_blocks", "mem_used_blocks",
    "ssd_used_blocks", "capacity_blocks", "gets", "get_hits", "puts",
    "puts_stored", "flushes", "flush_requests", "evictions",
    "eviction_rounds", "migrated_in", "migrated_out", "ssd_writes",
    "bytes_read", "bytes_written", "blocks_written", "host_bytes_written",
    "pe_cycles", "erases", "logical_blocks", "_mem_units_used",
}
_COUNTER_PREFIXES = ("put_rejected_", "rejected_", "trickle_rejected")


def _is_counter_name(name: str) -> bool:
    return name in _COUNTER_EXACT or name.startswith(_COUNTER_PREFIXES)


class FloatDriftRule(Rule):
    rule_id = "DD004"
    title = "float accumulation into an integer accounting counter"
    rationale = (
        "Accounting counters (used, _size, wear/ledger fields) are exact "
        "integers the auditor replays; accumulating a float drifts and "
        "breaks exact ledger replay. Round explicitly with int()/round() "
        "or use integer arithmetic (//)."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            target = node.target
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            else:
                continue
            if not _is_counter_name(name):
                continue
            if self._is_floaty(node.value):
                yield self.finding(
                    ctx, node,
                    f"float-valued accumulation into integer counter "
                    f"{name!r} — drift breaks exact ledger replay; round "
                    f"explicitly (int()/round()) or use // integer division")

    @staticmethod
    def _is_floaty(expr: ast.expr) -> bool:
        # An explicit int()/round() wrapper at the top level sanctions
        # whatever floating-point math happens inside it.
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("int", "round", "len"):
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                return True
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "float":
                return True
        return False


# -- DD005 -------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque",
                  "Counter", "OrderedDict"}


class MutableDefaultRule(Rule):
    rule_id = "DD005"
    title = "mutable default argument"
    rationale = (
        "A mutable default is shared across calls — state leaks between "
        "simulations and between --jobs workers' warm-up phases. Default "
        "to None and construct inside the function."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {node.name}() — shared "
                        f"across calls; use None and construct inside")

    @staticmethod
    def _is_mutable(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in _MUTABLE_CALLS
        return False


# -- DD006 -------------------------------------------------------------------

class UnguardedTracerRule(Rule):
    rule_id = "DD006"
    title = "tracer call without the zero-cost guard"
    rationale = (
        "The observability contract is zero cost when tracing is off: "
        "every tracer call in simulator code must sit under an "
        "'if tracer is not None' guard (or equivalent early exit), both "
        "for speed and so untraced runs stay byte-identical."
    )

    #: Receiver spellings that denote the flight recorder.
    _RECV_RE = re.compile(r"(^|\.)_?tracer$")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code:
            return
        tail = ctx.module_tail()
        # repro.obs analysis/export code receives a non-None tracer by
        # contract; the guard idiom applies to simulator call sites.
        if tail.startswith(("obs/", "lint/")):
            return
        parents = _parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            recv = _dotted(node.func.value)
            if recv is None or not self._RECV_RE.search(recv):
                continue
            if not self._is_guarded(node, recv, parents):
                yield self.finding(
                    ctx, node,
                    f"call to {recv}.{node.func.attr}() outside an "
                    f"'if {recv} is not None' guard — tracing must be "
                    f"zero-cost when disabled")

    def _is_guarded(self, call: ast.Call, recv: str,
                    parents: Dict[int, ast.AST]) -> bool:
        node: ast.AST = call
        for ancestor in _ancestors(call, parents):
            if isinstance(ancestor, ast.If):
                if self._guards(ancestor.test, recv) \
                        and self._within(ancestor.body, node):
                    return True
            elif isinstance(ancestor, ast.IfExp):
                if self._guards(ancestor.test, recv) and ancestor.body is node:
                    return True
            elif isinstance(ancestor, ast.BoolOp) and isinstance(ancestor.op, ast.And):
                idx = next((i for i, v in enumerate(ancestor.values)
                            if v is node), None)
                if idx is not None and any(
                        self._guards(v, recv) for v in ancestor.values[:idx]):
                    return True
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._early_exit_guard(ancestor, recv, call):
                    return True
                return False
            node = ancestor
        return False

    def _guards(self, test: ast.expr, recv: str) -> bool:
        """Does ``test`` establish ``recv is not None``?"""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(self._guards(v, recv) for v in test.values)
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.IsNot) \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            return _dotted(test.left) == recv
        return False

    @staticmethod
    def _within(body: Sequence[ast.stmt], node: ast.AST) -> bool:
        return any(n is node or any(sub is node for sub in ast.walk(n))
                   for n in body)

    @staticmethod
    def _early_exit_guard(func: ast.AST, recv: str, call: ast.Call) -> bool:
        """``if recv is None: return/continue/raise`` before the call."""
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.If):
                continue
            test = stmt.test
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                    and _dotted(test.left) == recv):
                continue
            if stmt.body and isinstance(stmt.body[-1],
                                        (ast.Return, ast.Continue, ast.Raise)):
                if stmt.lineno < call.lineno:
                    return True
        return False


# -- DD007 -------------------------------------------------------------------

class SwallowedErrorRule(Rule):
    rule_id = "DD007"
    title = "bare except / swallowed error"
    rationale = (
        "The kernel run loop surfaces unhandled event failures by design "
        "(PR 1); a bare or swallowed except hides exactly the failures "
        "the auditor and obs validators exist to catch."
    )

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if _in_realtime_module(ctx):
            # A server must outlive misbehaving clients; broad handlers
            # at the connection boundary are the correct idiom there.
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' — catches SystemExit/KeyboardInterrupt "
                    "and hides kernel failures; name the exception")
                continue
            if self._is_broad(node.type) and self._only_pass(node.body):
                yield self.finding(
                    ctx, node,
                    "broad exception swallowed with 'pass' — failures the "
                    "run loop deliberately surfaces are silently dropped")

    def _is_broad(self, type_node: ast.expr) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        return False

    @staticmethod
    def _only_pass(body: Sequence[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in body
        )


# -- DD008 -------------------------------------------------------------------

#: Put-outcome ledger fields (PR 3): ``puts == puts_stored + put_rejected_*``.
LEDGER_FIELDS = {
    "puts", "puts_stored", "put_rejected_policy", "put_rejected_capacity",
    "put_rejected_admission", "put_rejected_backpressure",
    "trickle_rejected_admission", "rejected_puts", "rejected_admission",
    "rejected_backpressure",
}

#: Modules allowed to write ledger fields: the cache implementations that
#: own the ledger, its dataclass definition, and the auditor/tracer that
#: reconcile it.
LEDGER_WRITER_MODULES = {
    "core/cache_manager.py",
    "core/baselines.py",
    "core/stats.py",
    "core/audit.py",
    "obs/tracer.py",
    "service/cache.py",
}


class LedgerBypassRule(Rule):
    rule_id = "DD008"
    title = "stats-counter write bypassing the put-outcome ledger"
    rationale = (
        "Every put must land in puts_stored or exactly one rejection "
        "bucket; a write to a ledger field outside the owning modules "
        "breaks the 'puts == stored + rejected_*' identity the auditor "
        "and the obs ledger replay both assert."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code:
            return
        if ctx.module_tail() in LEDGER_WRITER_MODULES:
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in LEDGER_FIELDS:
                    yield self.finding(
                        ctx, node,
                        f"write to ledger field {target.attr!r} outside the "
                        f"owning modules ({', '.join(sorted(LEDGER_WRITER_MODULES))}) "
                        f"— route the outcome through put_many so "
                        f"'puts == stored + rejected_*' stays exact")


# -- DD009 -------------------------------------------------------------------

#: Module prefixes on the per-event data path, where an O(n) list
#: operation compounds into O(n^2) over a run.
HOT_PATH_PREFIXES = ("simkernel/", "core/", "guest/", "cleancache/", "mem/")

#: Hot-prefix modules exempt from DD009: the auditor's reference models
#: are deliberately brute-force (plain lists, ``remove``/``pop(0)``) so
#: differential tests compare against the simplest possible restatement.
HOT_PATH_EXEMPT = {"core/audit.py"}

_LIST_CALLS = {"list", "sorted"}


class LinearListOpRule(Rule):
    rule_id = "DD009"
    title = "linear-time list operation in a hot-path module"
    rationale = (
        "The per-event data path (kernel, pools, cache manager, guest "
        "page cache) runs millions of times per experiment; list.pop(0), "
        "'x in <list>' membership, and per-element 'del list[i]' are all "
        "O(n) and compound into O(n^2) run time. Use a deque, a dict/set "
        "index, or the flat BlockTable slab instead."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.in_sim_code:
            return
        tail = ctx.module_tail()
        if tail in HOT_PATH_EXEMPT or not tail.startswith(HOT_PATH_PREFIXES):
            return
        parents = _parents(ctx.tree)
        list_attrs = self._list_valued_attrs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_pop_front(ctx, node, parents, list_attrs)
            elif isinstance(node, ast.Compare):
                yield from self._check_membership(ctx, node, parents, list_attrs)
            elif isinstance(node, ast.Delete):
                yield from self._check_del(ctx, node, parents, list_attrs)

    # -- list-typed receiver inference (mirrors DD003's set inference) ---

    @staticmethod
    def _is_list_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.ListComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in _LIST_CALLS
        return False

    @staticmethod
    def _enclosing_function(node: ast.AST, parents: Dict[int, ast.AST]
                            ) -> Optional[ast.AST]:
        for ancestor in _ancestors(node, parents):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def _list_valued_locals(self, node: ast.AST,
                            parents: Dict[int, ast.AST]) -> Set[str]:
        func = self._enclosing_function(node, parents)
        if func is None:
            return set()
        names: Set[str] = set()
        for stmt in ast.walk(func):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_list_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _list_valued_attrs(self, tree: ast.AST) -> Set[str]:
        attrs: Set[str] = set()
        for stmt in ast.walk(tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_list_expr(value):
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
        return attrs

    def _is_known_list(self, expr: ast.expr, node: ast.AST,
                       parents: Dict[int, ast.AST],
                       list_attrs: Set[str]) -> Optional[str]:
        """Spelled receiver if ``expr`` is list-valued by local inference."""
        if isinstance(expr, ast.Name):
            if expr.id in self._list_valued_locals(node, parents):
                return expr.id
        elif (isinstance(expr, ast.Attribute)
              and isinstance(expr.value, ast.Name)
              and expr.value.id == "self" and expr.attr in list_attrs):
            return f"self.{expr.attr}"
        return None

    # -- the three flagged shapes ----------------------------------------

    def _check_pop_front(self, ctx: LintContext, node: ast.Call,
                         parents: Dict[int, ast.AST],
                         list_attrs: Set[str]) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "pop"
                and len(node.args) == 1 and not node.keywords):
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and arg.value == 0):
            return
        recv = self._is_known_list(func.value, node, parents, list_attrs)
        if recv is not None:
            yield self.finding(
                ctx, node,
                f"{recv}.pop(0) shifts every remaining element — O(n) per "
                f"event; use collections.deque.popleft() or an index cursor")

    def _check_membership(self, ctx: LintContext, node: ast.Compare,
                          parents: Dict[int, ast.AST],
                          list_attrs: Set[str]) -> Iterator[Finding]:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            recv = self._is_known_list(comparator, node, parents, list_attrs)
            if recv is not None:
                yield self.finding(
                    ctx, node,
                    f"membership test against list {recv!r} scans linearly — "
                    f"O(n) per event; keep a set/dict alongside the list")

    def _check_del(self, ctx: LintContext, node: ast.Delete,
                   parents: Dict[int, ast.AST],
                   list_attrs: Set[str]) -> Iterator[Finding]:
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            if isinstance(target.slice, ast.Slice):
                continue  # del lst[:] and friends are wholesale, not per-element
            recv = self._is_known_list(target.value, node, parents, list_attrs)
            if recv is not None:
                yield self.finding(
                    ctx, node,
                    f"del {recv}[i] shifts every element past i — O(n) per "
                    f"event; swap-with-last, tombstone, or use a dict index")


# -- DD010 -------------------------------------------------------------------

#: ``os`` functions that block on storage until the kernel flushes.
_BLOCKING_OS_FNS = {"fsync", "fdatasync", "sync"}

#: Receiver spellings that denote the disk store / service cache, whose
#: data-path methods run SQLite transactions and blob I/O synchronously.
_BLOCKING_RECV_RE = re.compile(r"(^|\.)_?(store|cache)$")

#: The synchronous data-path methods on those receivers.  ``stats`` and
#: ``close`` are deliberately absent: both are cheap metadata reads and
#: flagging them would force suppressions on every shutdown path.
_BLOCKING_DATA_METHODS = {
    "get", "set", "delete", "delete_entry", "flush", "flush_all", "recover",
}


class BlockingAsyncCallRule(Rule):
    rule_id = "DD010"
    title = "blocking call inside an async def body"
    rationale = (
        "The service runs one event loop: a time.sleep, fsync, builtin "
        "open(), or synchronous DiskStore/ServiceCache data call inside "
        "an async def stalls every connection, the telemetry sidecar, "
        "and the snapshot task at once. Use await asyncio.sleep, hoist "
        "file I/O into the sync entry point, or justify the bounded "
        "blocking with a suppression."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not _in_realtime_module(ctx):
            # Only the realtime modules host event loops; simulated code
            # is synchronous by construction and DD001 already owns it.
            return
        time_mods, time_members = _import_aliases(ctx.tree, "time")
        os_mods, os_members = _import_aliases(ctx.tree, "os")
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in self._own_body(func):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(
                    ctx, node, time_mods, time_members, os_mods, os_members)

    @staticmethod
    def _own_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes executed *by this coroutine* — nested defs excluded (a
        nested async def is visited on its own; a nested sync def only
        blocks if the coroutine calls it, which the call-site catches)."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, ctx: LintContext, node: ast.Call,
                    time_mods: Set[str], time_members: Dict[str, str],
                    os_mods: Set[str], os_members: Dict[str, str]
                    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                yield self.finding(
                    ctx, node,
                    "builtin open() inside an async def blocks the event "
                    "loop on disk I/O — open files in the sync entry point "
                    "and pass the stream in")
            elif time_members.get(func.id) == "sleep":
                yield self.finding(
                    ctx, node,
                    "time.sleep() inside an async def stalls the whole "
                    "event loop — use 'await asyncio.sleep(...)'")
            elif os_members.get(func.id) in _BLOCKING_OS_FNS:
                yield self.finding(
                    ctx, node,
                    f"os.{os_members[func.id]}() inside an async def blocks "
                    f"until the kernel flushes — offload to the sync data "
                    f"path or a thread")
            return
        if not isinstance(func, ast.Attribute):
            return
        recv = _dotted(func.value)
        if recv is None:
            return
        if recv in time_mods and func.attr == "sleep":
            yield self.finding(
                ctx, node,
                f"{recv}.sleep() inside an async def stalls the whole "
                f"event loop — use 'await asyncio.sleep(...)'")
        elif recv in os_mods and func.attr in _BLOCKING_OS_FNS:
            yield self.finding(
                ctx, node,
                f"{recv}.{func.attr}() inside an async def blocks until "
                f"the kernel flushes — offload to the sync data path or "
                f"a thread")
        elif _BLOCKING_RECV_RE.search(recv) \
                and func.attr in _BLOCKING_DATA_METHODS:
            yield self.finding(
                ctx, node,
                f"synchronous {recv}.{func.attr}() inside an async def — "
                f"SQLite transactions and blob I/O block the event loop; "
                f"bound the cost and justify with a suppression, or "
                f"offload to a thread")


# -- registry ----------------------------------------------------------------

def _build_rules() -> List[Rule]:
    from .typed import TypedCoreRule

    return [
        WallClockRule(),
        UnseededRandomRule(),
        UnorderedDecisionIterationRule(),
        FloatDriftRule(),
        MutableDefaultRule(),
        UnguardedTracerRule(),
        SwallowedErrorRule(),
        LedgerBypassRule(),
        LinearListOpRule(),
        BlockingAsyncCallRule(),
        TypedCoreRule(),
    ]


ALL_RULES: List[Rule] = _build_rules()


# -- whole-program rules (descriptors only) ----------------------------------
#
# DD011..DD014 are checked by :mod:`repro.lint.analysis` over the project
# call graph, not per file; the classes below carry their catalog metadata
# (and document each rule's witness format) so ``--list-rules``, pragma
# validation, and SARIF share one registry with the per-file rules.

class WholeProgramRule(Rule):
    """Metadata carrier for analyzers that need the whole project."""

    whole_program = True
    #: How the finding's witness path reads, for ``--list-rules`` JSON.
    witness_doc = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return ()


class InterproceduralTaintRule(WholeProgramRule):
    rule_id = "DD011"
    title = "nondeterminism taint reaching a decision sink"
    rationale = (
        "Wall-clock reads, unseeded random, builtin hash()/id(), os.environ "
        "and unordered-set iteration results must never flow — even through "
        "helpers in other modules — into victim selection, eviction rounds, "
        "admission, migration/lending choices, or ledger writers: any such "
        "path breaks fixed-seed replay exactly the way the ShardsEstimator "
        "PYTHONHASHSEED bug did")
    witness_doc = (
        "source -> sink call chain: first hop is the sink-side expression, "
        "each later hop is the callee (or tainted attribute store) that "
        "carried the value, ending at the nondeterminism source")


class AwaitInterleavingRule(WholeProgramRule):
    rule_id = "DD012"
    title = "read-modify-write of shared service state split across an await"
    rationale = (
        "The asyncio service interleaves handlers at every await: loading a "
        "shared cache/store/registry attribute, awaiting, then storing a "
        "value derived from the stale read silently corrupts accounting "
        "under concurrency; hold no shared state across awaits, or guard "
        "the section with an async lock")
    witness_doc = (
        "three hops: the shared-attribute load, the await that yields the "
        "event loop, and the store that commits the stale value")


class GeneratorProtocolRule(WholeProgramRule):
    rule_id = "DD013"
    title = "sim-kernel generator-protocol misuse"
    rationale = (
        "Simulation processes are generators driven by the event kernel: "
        "yielding a generator object (instead of delegating with 'yield "
        "from') parks the process on a non-event, and calling a generator "
        "function as a bare statement discards the generator so its body "
        "never runs — both are silent no-ops that skew results")
    witness_doc = "single hop: the definition of the generator being misused"


class AuditCoverageRule(WholeProgramRule):
    rule_id = "DD014"
    title = "ledger counter without an auditor cross-check"
    rationale = (
        "Every monotone put-outcome/ledger counter in repro.core.stats must "
        "be reconciled by at least one invariant in repro.core.audit — an "
        "unchecked counter is exactly where bookkeeping drift hides (the "
        "shadow auditor is the reproduction's ground truth)")
    witness_doc = (
        "single hop: the dataclass field definition that no auditor "
        "invariant references")


INTERPROC_RULES: List[Rule] = [
    InterproceduralTaintRule(),
    AwaitInterleavingRule(),
    GeneratorProtocolRule(),
    AuditCoverageRule(),
]


def rule_catalog() -> List[Dict[str, str]]:
    """Machine-readable rule listing for ``--list-rules``."""
    entries = []
    for rule in list(ALL_RULES) + INTERPROC_RULES:
        entries.append({
            "id": rule.rule_id,
            "severity": rule.severity,
            "title": rule.title,
            "rationale": rule.rationale,
            "scope": ("whole-program" if getattr(rule, "whole_program", False)
                      else "per-file"),
            "witness": getattr(rule, "witness_doc", ""),
        })
    return entries
