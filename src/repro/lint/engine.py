"""sim-lint engine: file walking, suppression parsing, finding reports.

The engine is rule-agnostic: it parses each file once, builds a
:class:`LintContext` (AST + source lines + suppression table + path
classification), hands it to every registered :class:`Rule`, and filters
the resulting :class:`Finding` list through the suppressions.

Suppression syntax (all forms require a parenthesised justification; an
unjustified suppression is itself reported as ``DD000``):

* ``# dd-lint: disable=DD001,DD006 (reason)`` — this line only;
* ``# dd-lint: disable-next-line=DD003 (reason)`` — the following line;
* ``# dd-lint: disable-file=DD002 (reason)`` — the whole file;
* ``disable=all`` suppresses every rule for the given scope.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "SuppressionTable",
    "WitnessHop",
    "format_findings_json",
    "format_findings_text",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_context",
]

#: Directories never walked implicitly.  ``lint_fixtures`` holds the
#: known-bad snippets the test suite asserts each rule fires on; they are
#: linted only when named explicitly on the command line.
SKIP_DIR_NAMES = {"__pycache__", "lint_fixtures", ".git"}
SKIP_DIR_SUFFIXES = (".egg-info",)

_SUPPRESS_RE = re.compile(
    r"#\s*dd-lint:\s*(?P<scope>disable|disable-next-line|disable-file)"
    r"\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*\((?P<reason>[^)]*)\))?\s*(?:#|$)"
)


@dataclass(frozen=True)
class WitnessHop:
    """One hop of a whole-program witness path (source → … → sink)."""

    path: str
    line: int
    note: str

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class Finding:
    """One lint finding, machine-readable.

    ``witness`` is empty for the per-file rules; the whole-program
    analyzers (DD011/DD012) attach the hop-by-hop evidence chain that
    justifies the finding, rendered in text, JSON, and SARIF output.
    """

    rule_id: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str
    witness: Tuple[WitnessHop, ...] = ()

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.witness:
            payload["witness"] = [hop.as_dict() for hop in self.witness]
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Finding":
        hops = tuple(
            WitnessHop(path=str(h["path"]), line=int(h["line"]),  # type: ignore[arg-type, index, call-overload]
                       note=str(h["note"]))  # type: ignore[index, call-overload]
            for h in payload.get("witness", ())  # type: ignore[attr-defined, union-attr]
        )
        return Finding(
            rule_id=str(payload["rule"]),
            severity=str(payload["severity"]),
            path=str(payload["path"]),
            line=int(payload["line"]),      # type: ignore[arg-type]
            col=int(payload["col"]),        # type: ignore[arg-type]
            message=str(payload["message"]),
            witness=hops,
        )


@dataclass
class SuppressionTable:
    """Parsed ``# dd-lint:`` pragmas for one file."""

    #: line number -> set of rule ids suppressed on that line ("all" wildcard).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_wide: Set[str] = field(default_factory=set)
    #: DD000 findings produced while parsing (unjustified suppressions).
    defects: List[Tuple[int, str]] = field(default_factory=list)
    #: (line, rule_id) pairs that actually silenced at least one finding.
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        rules = self.by_line.get(finding.line, set()) | self.file_wide
        if "all" in rules or finding.rule_id in rules:
            self.used.add((finding.line, finding.rule_id))
            return True
        return False


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than scanning lines) means docstrings and string
    literals may freely *mention* the pragma syntax — only actual
    comments are parsed.  Tokenizer errors (only possible on files that
    already failed to parse) degrade to yielding nothing.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_suppressions(source: str, known_rules: Set[str]) -> SuppressionTable:
    table = SuppressionTable()
    for lineno, text in _comment_tokens(source):
        if "dd-lint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            table.defects.append(
                (lineno, "malformed dd-lint pragma (expected "
                         "'# dd-lint: disable=DDnnn (reason)')"))
            continue
        rule_ids = {part.strip() for part in match.group("rules").split(",")
                    if part.strip()}
        unknown = sorted(r for r in rule_ids
                         if r != "all" and r not in known_rules)
        if unknown:
            table.defects.append(
                (lineno, f"suppression names unknown rule(s): {', '.join(unknown)}"))
        reason = (match.group("reason") or "").strip()
        if not reason:
            table.defects.append(
                (lineno, "suppression without justification — add "
                         "'(reason)' after the rule list"))
        scope = match.group("scope")
        if scope == "disable-file":
            table.file_wide |= rule_ids
        elif scope == "disable-next-line":
            table.by_line.setdefault(lineno + 1, set()).update(rule_ids)
        else:
            table.by_line.setdefault(lineno, set()).update(rule_ids)
    return table


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    path: Path
    rel: str              # posix-style path as reported in findings
    tree: ast.AST
    lines: Sequence[str]
    suppressions: SuppressionTable

    @property
    def in_sim_code(self) -> bool:
        """True for simulator source (``src/repro/``), false for tests."""
        return "/repro/" in f"/{self.rel}"

    def module_tail(self) -> str:
        """The path relative to the ``repro`` package root, if any."""
        marker = "repro/"
        idx = self.rel.rfind(marker)
        return self.rel[idx + len(marker):] if idx >= 0 else self.rel


class Rule:
    """Base class for sim-lint rules.

    Subclasses set ``rule_id``/``severity``/``title``/``rationale`` and
    implement :meth:`check`.  Rules are stateless; one instance serves
    the whole run.
    """

    rule_id: str = "DD000"
    severity: str = "error"
    title: str = ""
    rationale: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str,
                severity: Optional[str] = None) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order.

    Directories in :data:`SKIP_DIR_NAMES` are pruned during the walk, but
    a path passed explicitly (even inside ``lint_fixtures``) is always
    yielded — that is how the test suite lints the bad-snippet fixtures.
    """
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part in SKIP_DIR_NAMES or part.endswith(SKIP_DIR_SUFFIXES)
                   for part in parts[:-1]):
                continue
            yield candidate


def _rel_path(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _known_rule_ids() -> Set[str]:
    """Ids of the full catalog — suppression pragmas are validated
    against every rule that exists (per-file and whole-program), not
    just the ones selected with ``--rule`` (lazy import to avoid an
    engine <-> rules cycle)."""
    from .rules import ALL_RULES, INTERPROC_RULES

    return {rule.rule_id for rule in ALL_RULES} | {
        rule.rule_id for rule in INTERPROC_RULES}


def load_context(path: Path, root: Optional[Path] = None) -> Optional[LintContext]:
    """Parse one file into the shared :class:`LintContext`.

    This is the single place source is parsed and ``dd-lint`` pragmas
    are interpreted — both the per-file rule loop and the whole-program
    analyzers consume the same context, so suppression semantics cannot
    drift between them.  Returns ``None`` on a syntax error (the
    per-file path reports those as DD000).
    """
    source = path.read_text(encoding="utf-8")
    rel = _rel_path(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return LintContext(
        path=path, rel=rel, tree=tree, lines=source.splitlines(),
        suppressions=parse_suppressions(source, _known_rule_ids()),
    )


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint one file; returns unsuppressed findings plus DD000 defects."""
    rel = _rel_path(path, root)
    try:
        ctx = load_context(path, root=root)
    except OSError as exc:
        return [Finding("DD000", "error", rel, 1, 0, f"unreadable: {exc}")]
    if ctx is None:
        source = path.read_text(encoding="utf-8")
        try:
            ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding("DD000", "error", rel, exc.lineno or 1,
                            exc.offset or 0, f"syntax error: {exc.msg}")]
        return []
    table = ctx.suppressions
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not table.suppresses(finding):
                findings.append(finding)
    for lineno, message in table.defects:
        findings.append(Finding("DD000", "warning", rel, lineno, 0, message))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint every python file reachable from ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules, root=root))
    findings.sort(key=Finding.sort_key)
    return findings


# -- output formats ----------------------------------------------------------

def format_findings_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "sim-lint: clean (no findings)"
    parts = []
    for f in findings:
        parts.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.severity}] {f.message}")
        for index, hop in enumerate(f.witness):
            arrow = "witness:" if index == 0 else "      ->"
            parts.append(f"    {arrow} {hop.path}:{hop.line}: {hop.note}")
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    parts.append(f"sim-lint: {errors} error(s), {warnings} warning(s)")
    return "\n".join(parts)


def format_findings_json(findings: Sequence[Finding], strict: bool) -> str:
    errors = sum(1 for f in findings if f.severity == "error")
    payload = {
        "version": 1,
        "tool": "sim-lint",
        "strict": strict,
        "counts": {
            "errors": errors,
            "warnings": len(findings) - errors,
            "total": len(findings),
        },
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def exit_code(findings: Sequence[Finding], strict: bool) -> int:
    """0 when clean; 1 on errors (or, under ``--strict``, any finding)."""
    if strict:
        return 1 if findings else 0
    return 1 if any(f.severity == "error" for f in findings) else 0
