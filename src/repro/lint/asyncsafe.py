"""Await-interleaving analysis for the live service (rule DD012).

The asyncio service is single-threaded, so *synchronous* spans are
atomic — but every ``await`` yields the event loop, and any other
connection handler, the telemetry sidecar, or the snapshot task may run
in the gap.  The classic corruption is check-then-act / read-modify-
write on shared state split across that gap:

    counter = self.ops          # load
    await something()           # another handler mutates self.ops
    self.ops = counter + 1      # store commits the stale read

The await-segmentation model: each ``async def`` in a real-time module
(``service/``, ``obs/live.py``) is cut into segments at its ``await``
expressions.  For every ``self``-rooted attribute path the analyzer
records loads, stores, and awaits (with their lines) and reports:

* **statement-level RMW** — an assignment whose right-hand side both
  awaits and reads the path being stored (``self.x = await f(self.x)``),
  and any ``self.x += await …`` / ``self.x op= …`` containing an await;
* **cross-segment RMW** — a load of the path in one segment and a store
  in a later one (load line < await line < store line, all strict), i.e.
  a value read before the suspension point commits after it.

Accesses inside an ``async with`` whose context expression names a lock
(``…lock…``/``…mutex…``/``…sem…``/``…guard…``) are exempt — the lock
serializes the critical section.  Everything else needs either a
restructure (capture-then-swap before the await; the pattern
``obj, self.attr = self.attr, None`` is atomic) or a justified
``dd-lint: disable=DD012`` single-writer argument.

Known limits (documented in docs/LINTING.md): aliased shared state
(``cache = self.cache`` then mutating ``cache.x``) is tracked one level
deep only via the ``self``-rooted path; cross-coroutine invariants
(two different methods racing on the same field) are approximated by
analyzing each coroutine alone.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import ModuleInfo, Project, dotted_name, own_nodes
from .engine import Finding, WitnessHop
from .rules import REALTIME_MODULES

__all__ = ["analyze_asyncsafe"]

_RULE_ID = "DD012"

_LOCK_NAME_RE = re.compile(r"lock|mutex|sem|guard", re.IGNORECASE)


def _module_tail(rel: str) -> str:
    marker = "repro/"
    idx = rel.rfind(marker)
    return rel[idx + len(marker):] if idx >= 0 else rel


def _is_realtime(module: ModuleInfo) -> bool:
    tail = _module_tail(module.rel)
    return any(tail.startswith(prefix) if prefix.endswith("/")
               else tail == prefix for prefix in REALTIME_MODULES)


@dataclass
class _Access:
    line: int
    locked: bool


class _CoroutineScan:
    """Loads / stores / awaits of one ``async def``, segmented."""

    def __init__(self, func_node: ast.AST) -> None:
        self.loads: Dict[str, List[_Access]] = {}
        self.stores: Dict[str, List[_Access]] = {}
        self.awaits: List[_Access] = []
        #: statement-level findings: (line, col, path, has_aug)
        self.stmt_rmw: List[Tuple[int, int, str, bool]] = []
        self._walk(func_node, locked=False)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _self_path(node: ast.AST) -> Optional[str]:
        """``self.a`` / ``self.a.b`` for an attribute rooted at self."""
        dotted = dotted_name(node)
        if dotted is not None and dotted.startswith("self."):
            return dotted
        return None

    def _record_expr(self, node: ast.AST, locked: bool) -> None:
        """Record loads and awaits inside one expression subtree."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Await):
                self.awaits.append(_Access(sub.lineno, locked))
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                path = self._self_path(sub)
                if path is not None:
                    self.loads.setdefault(path, []).append(
                        _Access(sub.lineno, locked))

    def _paths_read(self, node: ast.AST) -> Set[str]:
        found: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                path = self._self_path(sub)
                if path is not None:
                    found.add(path)
        return found

    @staticmethod
    def _has_await(node: ast.AST) -> bool:
        return any(isinstance(sub, ast.Await) for sub in ast.walk(node))

    def _record_store_target(self, target: ast.AST, line: int, locked: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store_target(elt, line, locked)
            return
        if isinstance(target, ast.Starred):
            self._record_store_target(target.value, line, locked)
            return
        path = None
        if isinstance(target, ast.Attribute):
            path = self._self_path(target)
        elif isinstance(target, ast.Subscript):
            path = self._self_path(target.value)
        if path is not None:
            self.stores.setdefault(path, []).append(_Access(line, locked))

    # -- traversal -------------------------------------------------------

    def _walk(self, node: ast.AST, locked: bool) -> None:
        for stmt in ast.iter_child_nodes(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.AsyncWith):
                item_locked = locked or any(
                    _LOCK_NAME_RE.search(dotted_name(item.context_expr) or "")
                    is not None
                    or (isinstance(item.context_expr, ast.Call)
                        and _LOCK_NAME_RE.search(
                            dotted_name(item.context_expr.func) or "")
                        is not None)
                    for item in stmt.items
                )
                for item in stmt.items:
                    self._record_expr(item.context_expr, locked)
                # Entering an async with awaits __aenter__.
                self.awaits.append(_Access(stmt.lineno, locked))
                self._walk_body(stmt, item_locked)
                continue
            if isinstance(stmt, ast.Assign):
                self._scan_assign(stmt.targets, stmt.value, stmt, locked,
                                  aug=False)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._scan_assign([stmt.target], stmt.value, stmt, locked,
                                  aug=False)
            elif isinstance(stmt, ast.AugAssign):
                self._scan_assign([stmt.target], stmt.value, stmt, locked,
                                  aug=True)
            else:
                self._record_expr_parts(stmt, locked)
            self._walk(stmt, locked)

    def _walk_body(self, stmt: ast.AST, locked: bool) -> None:
        self._walk(stmt, locked)

    def _record_expr_parts(self, stmt: ast.AST, locked: bool) -> None:
        """Record loads/awaits of a non-assignment statement's own
        expressions (children that are statements are walked separately)."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt) or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            self._record_expr(child, locked)

    def _scan_assign(
        self,
        targets: List[ast.AST],
        value: ast.AST,
        stmt: ast.AST,
        locked: bool,
        aug: bool,
    ) -> None:
        self._record_expr(value, locked)
        target_paths: Set[str] = set()
        for target in targets:
            self._record_store_target(target, stmt.lineno, locked)
            if isinstance(target, ast.Attribute):
                path = self._self_path(target)
                if path is not None:
                    target_paths.add(path)
            elif isinstance(target, ast.Subscript):
                path = self._self_path(target.value)
                if path is not None:
                    target_paths.add(path)
        if locked or not self._has_await(value):
            return
        read_paths = self._paths_read(value)
        for path in sorted(target_paths):
            if aug or path in read_paths:
                self.stmt_rmw.append(
                    (stmt.lineno, getattr(stmt, "col_offset", 0), path, aug))


def analyze_asyncsafe(project: Project) -> List[Finding]:
    """Run DD012 over the real-time modules of ``project``."""
    findings: List[Finding] = []
    for module in project.modules.values():
        if not _is_realtime(module):
            continue
        for func in project.functions.values():
            if func.module != module.name or not func.is_async:
                continue
            scan = _CoroutineScan(func.node)
            flagged: Set[str] = set()
            for line, col, path, aug in scan.stmt_rmw:
                flagged.add(path)
                verb = "augments" if aug else "re-reads"
                findings.append(Finding(
                    rule_id=_RULE_ID, severity="error", path=func.rel,
                    line=line, col=col,
                    message=(
                        f"'{func.qual}' {verb} shared '{path}' in a statement "
                        f"that awaits — the loop may interleave another "
                        f"handler between the read and the write"),
                    witness=(
                        WitnessHop(func.rel, line,
                                   f"read of {path} and await in one statement"),
                        WitnessHop(func.rel, line,
                                   f"store to {path} commits the stale value"),
                    ),
                ))
            for path, stores in sorted(scan.stores.items()):
                if path in flagged:
                    continue
                loads = scan.loads.get(path, [])
                hit = None
                for load in loads:
                    if load.locked:
                        continue
                    for store in stores:
                        if store.locked or store.line <= load.line:
                            continue
                        for awaited in scan.awaits:
                            if load.line < awaited.line < store.line:
                                hit = (load, awaited, store)
                                break
                        if hit:
                            break
                    if hit:
                        break
                if hit is None:
                    continue
                load, awaited, store = hit
                findings.append(Finding(
                    rule_id=_RULE_ID, severity="error", path=func.rel,
                    line=store.line, col=0,
                    message=(
                        f"'{func.qual}' loads shared '{path}' (line "
                        f"{load.line}), awaits (line {awaited.line}), then "
                        f"stores it (line {store.line}) — check-then-act "
                        f"across an await; capture-and-swap before awaiting "
                        f"or guard with an async lock"),
                    witness=(
                        WitnessHop(func.rel, load.line, f"load of {path}"),
                        WitnessHop(func.rel, awaited.line,
                                   "await yields the event loop here"),
                        WitnessHop(func.rel, store.line,
                                   f"store to {path} commits the stale value"),
                    ),
                ))
    findings.sort(key=Finding.sort_key)
    return findings
